//! Area and peak-power estimation, and the design budget.
//!
//! Spotlight performs constrained optimization: "From the pareto-optimal
//! frontier, Spotlight selects the configuration that is closest to the
//! inputted area and power budgets without exceeding them" (Section VI-B).
//! This module supplies that envelope. The absolute constants are
//! first-order (a 16 nm-class process); what matters for the search is
//! that area and power increase monotonically with compute and SRAM so the
//! budget constrains the design.

use crate::config::HardwareConfig;
use crate::energy::EnergyTable;

/// First-order silicon area model.
///
/// # Examples
///
/// ```
/// use spotlight_accel::{AreaModel, HardwareConfig};
///
/// let m = AreaModel::default();
/// let small = HardwareConfig::new(128, 16, 1, 64, 64, 64)?;
/// let big = HardwareConfig::new(300, 20, 16, 256, 256, 256)?;
/// assert!(m.area_mm2(&small) < m.area_mm2(&big));
/// # Ok::<(), spotlight_accel::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Area of one 8-bit MAC lane (mm^2).
    pub mac_lane_mm2: f64,
    /// Fixed per-PE control overhead (mm^2).
    pub pe_overhead_mm2: f64,
    /// SRAM density (mm^2 per KiB).
    pub sram_mm2_per_kib: f64,
    /// Interconnect area per element/cycle of bandwidth (mm^2).
    pub noc_mm2_per_lane: f64,
}

impl AreaModel {
    /// Total die area of a configuration in mm^2.
    pub fn area_mm2(&self, hw: &HardwareConfig) -> f64 {
        let compute =
            hw.pes() as f64 * (self.pe_overhead_mm2 + self.mac_lane_mm2 * hw.simd_lanes() as f64);
        let sram = self.sram_mm2_per_kib * hw.total_sram_kib() as f64;
        let noc = self.noc_mm2_per_lane
            * hw.noc_bandwidth() as f64
            * (hw.array_half_perimeter() as f64).sqrt();
        compute + sram + noc
    }

    /// Peak power draw in watts at the given clock, assuming every MAC lane
    /// and the full NoC bandwidth are busy each cycle, plus SRAM leakage.
    pub fn peak_power_w(&self, hw: &HardwareConfig, energy: &EnergyTable, clock_ghz: f64) -> f64 {
        let macs_per_s = hw.peak_macs_per_cycle() as f64 * clock_ghz * 1e9;
        let mac_w = macs_per_s * (energy.mac_pj + 2.0 * energy.rf_access_pj(hw)) * 1e-12;
        let noc_w = hw.noc_bandwidth() as f64
            * clock_ghz
            * 1e9
            * (energy.l2_access_pj(hw) + energy.noc_delivery_pj(hw))
            * 1e-12;
        mac_w + noc_w + energy.leakage_w(hw)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            mac_lane_mm2: 0.0006,
            pe_overhead_mm2: 0.0008,
            sram_mm2_per_kib: 0.0035,
            noc_mm2_per_lane: 0.0004,
        }
    }
}

/// An area + power budget that candidate designs must fit within.
///
/// # Examples
///
/// ```
/// use spotlight_accel::{Budget, HardwareConfig};
///
/// let b = Budget::edge();
/// let hw = HardwareConfig::new(168, 14, 1, 96, 128, 64)?;
/// assert!(b.admits(&hw));
/// # Ok::<(), spotlight_accel::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Maximum die area in mm^2.
    pub max_area_mm2: f64,
    /// Maximum peak power in watts.
    pub max_power_w: f64,
    /// Clock frequency used for power estimation, GHz.
    pub clock_ghz: f64,
    area_model: AreaModel,
    energy: EnergyTable,
}

impl Budget {
    /// Builds a budget with the default area and energy models.
    pub fn new(max_area_mm2: f64, max_power_w: f64, clock_ghz: f64) -> Self {
        Budget {
            max_area_mm2,
            max_power_w,
            clock_ghz,
            area_model: AreaModel::default(),
            energy: EnergyTable::default_8bit(),
        }
    }

    /// The edge-scale envelope used for Figure 6: large enough for every
    /// Figure 3 edge configuration (up to 300 PEs, 512 KiB of SRAM).
    pub fn edge() -> Self {
        Budget::new(8.0, 8.0, 1.0)
    }

    /// The cloud-scale envelope used for Figure 7 (up to ~4096 PEs and
    /// 16 MiB of SRAM).
    pub fn cloud() -> Self {
        Budget::new(120.0, 110.0, 1.0)
    }

    /// Whether `hw` fits inside both the area and power limits.
    pub fn admits(&self, hw: &HardwareConfig) -> bool {
        self.area_model.area_mm2(hw) <= self.max_area_mm2
            && self
                .area_model
                .peak_power_w(hw, &self.energy, self.clock_ghz)
                <= self.max_power_w
    }

    /// Area of `hw` under this budget's area model.
    pub fn area_mm2(&self, hw: &HardwareConfig) -> f64 {
        self.area_model.area_mm2(hw)
    }

    /// Peak power of `hw` under this budget's models.
    pub fn peak_power_w(&self, hw: &HardwareConfig) -> f64 {
        self.area_model
            .peak_power_w(hw, &self.energy, self.clock_ghz)
    }

    /// Fraction of the area budget consumed (1.0 = exactly at the limit).
    pub fn area_utilization(&self, hw: &HardwareConfig) -> f64 {
        self.area_mm2(hw) / self.max_area_mm2
    }

    /// The underlying area model.
    pub fn area_model(&self) -> &AreaModel {
        &self.area_model
    }

    /// The underlying energy table.
    pub fn energy_table(&self) -> &EnergyTable {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_monotone_in_each_resource() {
        let m = AreaModel::default();
        let base = HardwareConfig::new(128, 16, 2, 64, 128, 64).unwrap();
        let more_pes = HardwareConfig::new(256, 16, 2, 64, 128, 64).unwrap();
        let more_simd = HardwareConfig::new(128, 16, 8, 64, 128, 64).unwrap();
        let more_sram = HardwareConfig::new(128, 16, 2, 256, 256, 64).unwrap();
        let more_bw = HardwareConfig::new(128, 16, 2, 64, 128, 256).unwrap();
        for bigger in [more_pes, more_simd, more_sram, more_bw] {
            assert!(m.area_mm2(&base) < m.area_mm2(&bigger));
        }
    }

    #[test]
    fn edge_budget_admits_figure3_extremes() {
        let b = Budget::edge();
        let min = HardwareConfig::new(128, 8, 2, 64, 64, 64).unwrap();
        let max = HardwareConfig::new(300, 20, 16, 256, 256, 256).unwrap();
        assert!(b.admits(&min));
        assert!(b.admits(&max), "area={}", b.area_mm2(&max));
    }

    #[test]
    fn edge_budget_rejects_cloud_scale_designs() {
        let b = Budget::edge();
        let huge = HardwareConfig::new(4096, 64, 16, 8192, 8192, 1024).unwrap();
        assert!(!b.admits(&huge));
    }

    #[test]
    fn cloud_budget_admits_cloud_designs() {
        let b = Budget::cloud();
        let huge = HardwareConfig::new(4096, 64, 4, 4096, 8192, 1024).unwrap();
        assert!(b.admits(&huge), "area={}", b.area_mm2(&huge));
    }

    #[test]
    fn power_grows_with_clock() {
        let b1 = Budget::new(10.0, 10.0, 0.5);
        let b2 = Budget::new(10.0, 10.0, 2.0);
        let hw = HardwareConfig::new(168, 14, 1, 96, 128, 64).unwrap();
        assert!(b1.peak_power_w(&hw) < b2.peak_power_w(&hw));
    }

    #[test]
    fn utilization_is_area_over_budget() {
        let b = Budget::edge();
        let hw = HardwareConfig::new(168, 14, 1, 96, 128, 64).unwrap();
        let u = b.area_utilization(&hw);
        assert!((u - b.area_mm2(&hw) / b.max_area_mm2).abs() < 1e-12);
        assert!(u > 0.0 && u < 1.0);
    }
}
