#![warn(missing_docs)]

//! Abstract DL-accelerator microarchitecture for the Spotlight
//! reproduction.
//!
//! Models the accelerator template of the paper's Figure 2: a 2-D spatial
//! array of processing elements (PEs), each with SIMD MAC lanes and a
//! private register file, fed by a single global scratchpad over a simple
//! uni-/multi-cast interconnect.
//!
//! The crate provides:
//!
//! - [`HardwareConfig`]: the hardware half of the co-design point
//!   (Figure 3's cardinal and ordinal hardware parameters),
//! - [`EnergyTable`]: per-access energy coefficients shared by the cost
//!   models,
//! - [`AreaModel`] and [`Budget`]: the area/power envelope used to compare
//!   designs fairly ("we scale all accelerators so that they fit in the
//!   same area", Section VII),
//! - [`baselines`]: the hand-designed Eyeriss-like, NVDLA-like, MAERI-like
//!   and ShiDianNao-like reference accelerators at edge and cloud scale.
//!
//! # Examples
//!
//! ```
//! use spotlight_accel::{Budget, HardwareConfig};
//!
//! let hw = HardwareConfig::new(256, 16, 4, 128, 128, 128)?;
//! assert_eq!(hw.pe_rows(), 16);
//! let budget = Budget::edge();
//! assert!(budget.admits(&hw));
//! # Ok::<(), spotlight_accel::ConfigError>(())
//! ```

pub mod area;
pub mod baselines;
pub mod config;
pub mod energy;

pub use area::{AreaModel, Budget};
pub use baselines::{Baseline, DataflowStyle};
pub use config::{ConfigError, HardwareConfig};
pub use energy::EnergyTable;
