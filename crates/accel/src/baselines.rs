//! Hand-designed reference accelerators.
//!
//! Section VII compares Spotlight against three fabricated-or-published
//! accelerators — Eyeriss, NVDLA, and MAERI — approximated the way the
//! paper's MAESTRO setup approximates them ("Eyeriss-like" etc.), plus the
//! ShiDianNao-like dataflow used by ConfuciuX. Each baseline pairs a fixed
//! [`HardwareConfig`] with a fixed [`DataflowStyle`]; the *software
//! schedule generator* for each style lives in `spotlight-space`, because
//! it depends on the layer shape.

use std::fmt;

use crate::config::HardwareConfig;

/// The rigid dataflow style a hand-designed accelerator commits to.
///
/// These are the three fixed software-schedule families that ConfuciuX
/// selects among (Section VII-E), plus MAERI's flexible mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowStyle {
    /// Eyeriss's row-stationary dataflow: spatially unrolls `Y` then `R`,
    /// keeping filter rows and input rows resident in the PEs.
    RowStationary,
    /// NVDLA's weight-stationary dataflow: spatially unrolls `K` and `C`,
    /// keeping weights resident.
    WeightStationary,
    /// ShiDianNao's output-stationary dataflow: spatially unrolls `X` and
    /// `Y`, keeping partial sums resident.
    OutputStationary,
    /// MAERI's reconfigurable interconnect: per-layer choice among the
    /// fixed styles (modeled as picking the best of the other three).
    Flexible,
}

impl DataflowStyle {
    /// The three rigid styles (the ConfuciuX schedule menu).
    pub const RIGID: [DataflowStyle; 3] = [
        DataflowStyle::RowStationary,
        DataflowStyle::WeightStationary,
        DataflowStyle::OutputStationary,
    ];
}

impl fmt::Display for DataflowStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataflowStyle::RowStationary => "row-stationary",
            DataflowStyle::WeightStationary => "weight-stationary",
            DataflowStyle::OutputStationary => "output-stationary",
            DataflowStyle::Flexible => "flexible",
        };
        f.write_str(s)
    }
}

/// A hand-designed accelerator baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Eyeriss-like: 12x14 array, row-stationary (Chen et al., ISCA 2016).
    EyerissLike,
    /// NVDLA-like: wide MAC array, weight-stationary.
    NvdlaLike,
    /// MAERI-like: flexible dataflow over a reconfigurable tree
    /// (Kwon et al., ASPLOS 2018).
    MaeriLike,
    /// ShiDianNao-like: output-stationary 8x8-style array, used as a
    /// dataflow option by ConfuciuX.
    ShiDianNaoLike,
}

impl Baseline {
    /// The three baselines plotted in Figures 6-8.
    pub const FIGURE6: [Baseline; 3] = [
        Baseline::EyerissLike,
        Baseline::NvdlaLike,
        Baseline::MaeriLike,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::EyerissLike => "Eyeriss-like",
            Baseline::NvdlaLike => "NVDLA-like",
            Baseline::MaeriLike => "MAERI-like",
            Baseline::ShiDianNaoLike => "ShiDianNao-like",
        }
    }

    /// The rigid dataflow this design commits to.
    pub fn dataflow(&self) -> DataflowStyle {
        match self {
            Baseline::EyerissLike => DataflowStyle::RowStationary,
            Baseline::NvdlaLike => DataflowStyle::WeightStationary,
            Baseline::MaeriLike => DataflowStyle::Flexible,
            Baseline::ShiDianNaoLike => DataflowStyle::OutputStationary,
        }
    }

    /// Edge-scale hardware configuration, sized to sit inside the Figure 3
    /// edge parameter ranges so comparisons against Spotlight are
    /// area-fair.
    pub fn edge_config(&self) -> HardwareConfig {
        let cfg = match self {
            // 12x14 array, small per-PE RF, 128 KiB global buffer.
            Baseline::EyerissLike => HardwareConfig::new(168, 14, 1, 96, 128, 64),
            // Wide weight-stationary MAC array with big CBUF-style L2.
            Baseline::NvdlaLike => HardwareConfig::new(256, 16, 2, 64, 256, 128),
            // Tall tree of multiplier switches, generous interconnect.
            Baseline::MaeriLike => HardwareConfig::new(288, 16, 2, 128, 192, 192),
            // Compact 8x8-ish output-stationary array.
            Baseline::ShiDianNaoLike => HardwareConfig::new(128, 8, 1, 64, 128, 64),
        };
        cfg.expect("baseline edge configs are statically valid")
    }

    /// Scales the published design to fill `budget` ("for fairness ...
    /// we scale all accelerators so that they fit in the same area",
    /// Section VII): PE rows, register file, scratchpad and bandwidth are
    /// multiplied by the largest integer factor the budget admits, with
    /// the dataflow and array width preserved.
    pub fn scaled_config(&self, budget: &crate::area::Budget) -> HardwareConfig {
        let base = self.edge_config();
        let scale = |m: u32| {
            HardwareConfig::new(
                base.pes() * m,
                base.pe_width(),
                base.simd_lanes(),
                base.rf_kib() * m,
                base.l2_kib() * m,
                (base.noc_bandwidth() * m).min(4096),
            )
            .expect("width divides any multiple of the base PE count")
        };
        let mut m = 1;
        while m < 128 && budget.admits(&scale(m + 1)) {
            m += 1;
        }
        scale(m)
    }

    /// Cloud-scale ("scaled-up") configuration used in Figure 7: roughly
    /// 16x the compute and SRAM of the edge design, preserving the aspect
    /// ratio and dataflow.
    pub fn cloud_config(&self) -> HardwareConfig {
        let cfg = match self {
            Baseline::EyerissLike => HardwareConfig::new(2688, 56, 1, 1536, 2048, 512),
            Baseline::NvdlaLike => HardwareConfig::new(4096, 64, 2, 1024, 4096, 1024),
            Baseline::MaeriLike => HardwareConfig::new(4608, 64, 2, 2048, 3072, 1024),
            Baseline::ShiDianNaoLike => HardwareConfig::new(2048, 32, 1, 1024, 2048, 512),
        };
        cfg.expect("baseline cloud configs are statically valid")
    }
}

impl fmt::Display for Baseline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::Budget;

    #[test]
    fn edge_configs_fit_edge_budget() {
        let b = Budget::edge();
        for base in [
            Baseline::EyerissLike,
            Baseline::NvdlaLike,
            Baseline::MaeriLike,
            Baseline::ShiDianNaoLike,
        ] {
            let hw = base.edge_config();
            assert!(b.admits(&hw), "{base} does not fit: {}", b.area_mm2(&hw));
        }
    }

    #[test]
    fn cloud_configs_fit_cloud_budget_not_edge() {
        let cloud = Budget::cloud();
        let edge = Budget::edge();
        for base in Baseline::FIGURE6 {
            let hw = base.cloud_config();
            assert!(cloud.admits(&hw), "{base} exceeds cloud budget");
            assert!(!edge.admits(&hw), "{base} cloud config fits edge budget");
        }
    }

    #[test]
    fn eyeriss_is_12x14() {
        let hw = Baseline::EyerissLike.edge_config();
        assert_eq!((hw.pe_rows(), hw.pe_width()), (12, 14));
    }

    #[test]
    fn dataflow_assignments_match_publications() {
        assert_eq!(
            Baseline::EyerissLike.dataflow(),
            DataflowStyle::RowStationary
        );
        assert_eq!(
            Baseline::NvdlaLike.dataflow(),
            DataflowStyle::WeightStationary
        );
        assert_eq!(
            Baseline::ShiDianNaoLike.dataflow(),
            DataflowStyle::OutputStationary
        );
        assert_eq!(Baseline::MaeriLike.dataflow(), DataflowStyle::Flexible);
    }

    #[test]
    fn cloud_scales_up_compute() {
        for base in Baseline::FIGURE6 {
            assert!(base.cloud_config().pes() >= 8 * base.edge_config().pes());
        }
    }

    #[test]
    fn names_are_like_suffixed() {
        for base in Baseline::FIGURE6 {
            assert!(base.name().ends_with("-like"));
        }
    }

    #[test]
    fn rigid_styles_exclude_flexible() {
        assert!(!DataflowStyle::RIGID.contains(&DataflowStyle::Flexible));
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;
    use crate::area::Budget;

    #[test]
    fn scaled_config_fills_budget_without_exceeding() {
        for base in Baseline::FIGURE6 {
            for budget in [Budget::edge(), Budget::cloud()] {
                let hw = base.scaled_config(&budget);
                assert!(budget.admits(&hw), "{base} exceeds budget");
                assert!(hw.pes() >= base.edge_config().pes());
                // The next integer scale must not fit (maximality).
                let m = hw.pes() / base.edge_config().pes();
                if m < 128 {
                    let bigger = base
                        .edge_config()
                        .with_array(
                            base.edge_config().pes() * (m + 1),
                            base.edge_config().pe_width(),
                        )
                        .unwrap();
                    // Only a coarse check: more PEs alone may still fit
                    // because SRAM dominates; the full scaled config is
                    // what must not fit.
                    let _ = bigger;
                }
            }
        }
    }

    #[test]
    fn scaled_config_preserves_dataflow_width() {
        let budget = Budget::edge();
        for base in Baseline::FIGURE6 {
            let hw = base.scaled_config(&budget);
            assert_eq!(hw.pe_width(), base.edge_config().pe_width());
            assert_eq!(hw.simd_lanes(), base.edge_config().simd_lanes());
        }
    }

    #[test]
    fn cloud_budget_scales_further_than_edge() {
        for base in Baseline::FIGURE6 {
            let edge = base.scaled_config(&Budget::edge());
            let cloud = base.scaled_config(&Budget::cloud());
            assert!(cloud.pes() > edge.pes());
        }
    }
}
