//! Criterion bench: co-design-space sampling throughput.
//!
//! Candidate generation runs inside every acquisition batch (64 draws
//! per suggestion), so sampler latency multiplies through the whole
//! search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spotlight::swsearch::sample_schedule_guided;
use spotlight_accel::Baseline;
use spotlight_conv::ConvLayer;
use spotlight_space::dataflows::dataflow_schedule;
use spotlight_space::{mutate, sample, ParamRanges};

fn bench_sampling(c: &mut Criterion) {
    let ranges = ParamRanges::edge();
    let layer = ConvLayer::new(1, 128, 64, 3, 3, 28, 28);
    let hw = Baseline::NvdlaLike.edge_config();
    let mut rng = ChaCha8Rng::seed_from_u64(0);

    let mut group = c.benchmark_group("sampling");
    group.bench_function("hw_uniform", |b| {
        b.iter(|| black_box(sample::sample_hw(&mut rng, &ranges)))
    });
    group.bench_function("schedule_uniform", |b| {
        b.iter(|| black_box(sample::sample_schedule(&mut rng, &layer)))
    });
    group.bench_function("schedule_guided", |b| {
        b.iter(|| black_box(sample_schedule_guided(&mut rng, &layer, &hw)))
    });
    group.bench_function("dataflow_greedy", |b| {
        b.iter(|| {
            black_box(dataflow_schedule(
                Baseline::EyerissLike.dataflow(),
                &layer,
                &hw,
            ))
        })
    });
    let base = sample::sample_schedule(&mut rng, &layer);
    group.bench_function("schedule_mutate", |b| {
        b.iter(|| black_box(mutate::mutate_schedule(&mut rng, &base, &layer)))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
