//! Criterion bench: surrogate fit/predict scaling — the DESIGN.md
//! ablation of the paper's kernel choice.
//!
//! Section V-A argues for the linear kernel on efficiency grounds:
//! Matérn/RBF GPs fit in O(N^3) while the weight-space linear model fits
//! in O(N d^2). This bench quantifies both across training-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spotlight_gp::{BayesianLinearModel, GaussianProcess, Kernel, Surrogate};

fn dataset(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x: &Vec<f64>| {
            x.iter()
                .enumerate()
                .map(|(i, v)| v * (i as f64 + 1.0))
                .sum()
        })
        .collect();
    (xs, ys)
}

fn bench_fits(c: &mut Criterion) {
    let d = 11; // the Figure 4 feature count
    let mut group = c.benchmark_group("surrogate_fit");
    for n in [25usize, 50, 100, 200] {
        let (xs, ys) = dataset(n, d);
        group.bench_with_input(BenchmarkId::new("linear_weight_space", n), &n, |b, _| {
            b.iter(|| {
                let mut m = BayesianLinearModel::new(10.0, 1e-2);
                m.fit(black_box(&xs), black_box(&ys)).unwrap();
                black_box(m.predict(&xs[0]))
            })
        });
        group.bench_with_input(BenchmarkId::new("gp_matern52", n), &n, |b, _| {
            b.iter(|| {
                let mut m = GaussianProcess::new(Kernel::matern52(1.0), 1e-2);
                m.fit(black_box(&xs), black_box(&ys)).unwrap();
                black_box(m.predict(&xs[0]))
            })
        });
        group.bench_with_input(BenchmarkId::new("gp_rbf", n), &n, |b, _| {
            b.iter(|| {
                let mut m = GaussianProcess::new(Kernel::rbf(1.0), 1e-2);
                m.fit(black_box(&xs), black_box(&ys)).unwrap();
                black_box(m.predict(&xs[0]))
            })
        });
    }
    group.finish();
}

fn bench_predict_batch(c: &mut Criterion) {
    // Acquisition cost: predicting a 64-candidate batch.
    let d = 11;
    let (xs, ys) = dataset(100, d);
    let (cand, _) = dataset(64, d);
    let mut lin = BayesianLinearModel::new(10.0, 1e-2);
    lin.fit(&xs, &ys).unwrap();
    let mut gp = GaussianProcess::new(Kernel::matern52(1.0), 1e-2);
    gp.fit(&xs, &ys).unwrap();

    let mut group = c.benchmark_group("surrogate_predict_batch64");
    group.bench_function("linear_weight_space", |b| {
        b.iter(|| {
            for x in &cand {
                black_box(lin.predict(black_box(x)));
            }
        })
    });
    group.bench_function("gp_matern52", |b| {
        b.iter(|| {
            for x in &cand {
                black_box(gp.predict(black_box(x)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fits, bench_predict_batch);
criterion_main!(benches);
