//! Criterion bench: daBO suggest cost versus history length.
//!
//! One steady-state ask/tell round (incremental refit + 64-candidate
//! batched acquisition + O(d^2) moment update) on an optimizer primed
//! with N prior observations. With the sufficient-statistics refit the
//! per-suggest cost is independent of N for the linear surrogate — the
//! N=5000 group should land within a small factor of N=100 instead of
//! the old O(N d^2) rebuild growing linearly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spotlight_dabo::{Dabo, DaboConfig, FnFeatureMap, Search};

/// Feature dimension, sized like the hardware feature space.
const DIM: usize = 16;

type IdentityMap = FnFeatureMap<fn(&Vec<f64>) -> Vec<f64>>;

fn sample_point(rng: &mut dyn RngCore) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn cost(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>() + 1.0
}

fn primed(n: usize, rng: &mut ChaCha8Rng) -> Dabo<Vec<f64>, IdentityMap> {
    let fm = FnFeatureMap::new(DIM, (|x: &Vec<f64>| x.clone()) as fn(&Vec<f64>) -> Vec<f64>);
    let mut opt = Dabo::new(
        DaboConfig::default(),
        fm,
        sample_point as fn(&mut dyn RngCore) -> Vec<f64>,
    );
    for _ in 0..n {
        let p = sample_point(rng);
        let c = cost(&p);
        opt.observe(p, c);
    }
    opt
}

fn bench_dabo_suggest(c: &mut Criterion) {
    let mut group = c.benchmark_group("dabo_suggest");
    group.sample_size(10);
    for n in [100usize, 1000, 5000] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let mut opt = primed(n, &mut rng);
        group.bench_function(format!("linear_n{n}"), |b| {
            b.iter(|| {
                let p = opt.suggest(&mut rng);
                let c = cost(&p);
                opt.observe(black_box(p), c);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dabo_suggest);
criterion_main!(benches);
