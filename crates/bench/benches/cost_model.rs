//! Criterion bench: analytical cost-model throughput.
//!
//! The search evaluates tens of thousands of candidates per co-design
//! run, so cost-model latency is the tool's fundamental unit of work.
//! Benchmarks both analytical models on representative layers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spotlight_accel::Baseline;
use spotlight_conv::ConvLayer;
use spotlight_maestro::CostModel;
use spotlight_space::dataflows::dataflow_schedule;
use spotlight_space::Schedule;
use spotlight_timeloop::TimeloopModel;

fn bench_cost_models(c: &mut Criterion) {
    let hw = Baseline::NvdlaLike.edge_config();
    let layers = [
        ("resnet_conv3x3", ConvLayer::new(1, 128, 64, 3, 3, 28, 28)),
        ("gemm_1x1", ConvLayer::new(1, 768, 512, 1, 1, 16, 32)),
        ("depthwise", ConvLayer::new(96, 1, 1, 3, 3, 56, 56)),
    ];
    let maestro = CostModel::default();
    let timeloop = TimeloopModel::default();

    let mut group = c.benchmark_group("cost_model");
    for (name, layer) in layers {
        let sched = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &layer, &hw);
        group.bench_function(format!("maestro/{name}"), |b| {
            b.iter(|| black_box(maestro.evaluate(black_box(&hw), black_box(&sched), &layer)))
        });
        let trivial = Schedule::trivial(&layer);
        group.bench_function(format!("timeloop/{name}"), |b| {
            b.iter(|| black_box(timeloop.evaluate(black_box(&hw), black_box(&trivial), &layer)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_models);
criterion_main!(benches);
