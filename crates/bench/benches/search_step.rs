//! Criterion bench: end-to-end search-step cost per algorithm.
//!
//! One suggest/evaluate/observe round — the unit the Figure 10 x-axis
//! counts — for daBO with the feature space, vanilla BO, random search,
//! and the GA. Shows the per-sample overhead daBO pays for its sample
//! efficiency (Section VII-E: "Spotlight spends more time per-sample
//! than Spotlight-GA and Spotlight-R").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spotlight::swsearch::{optimize_schedule, SwSearchConfig};
use spotlight::variants::Variant;
use spotlight_accel::Baseline;
use spotlight_conv::ConvLayer;
use spotlight_eval::EvalEngine;
use spotlight_maestro::Objective;

fn bench_search_step(c: &mut Criterion) {
    let model = EvalEngine::maestro();
    let hw = Baseline::NvdlaLike.edge_config();
    let layer = ConvLayer::new(1, 128, 64, 3, 3, 28, 28);

    let mut group = c.benchmark_group("sw_search_30_samples");
    group.sample_size(10);
    for variant in [
        Variant::Spotlight,
        Variant::SpotlightV,
        Variant::SpotlightR,
        Variant::SpotlightGA,
    ] {
        let cfg = SwSearchConfig {
            samples: 30,
            objective: Objective::Edp,
            variant,
        };
        group.bench_function(variant.name(), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                black_box(optimize_schedule(&model, &hw, &layer, &cfg, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_step);
criterion_main!(benches);
