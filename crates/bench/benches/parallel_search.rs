//! Criterion bench: serial vs parallel layerwise software search.
//!
//! One `optimize_software` pass over a multi-layer model at 1, 2, and 4
//! worker threads. Because each layer draws from its own RNG stream
//! derived from `(seed, hw_sample, layer)`, results are bit-identical at
//! every thread count — this bench measures the wall-clock side of that
//! trade and, via a second group, what the memo cache saves on repeated
//! layer shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spotlight::codesign::{CodesignConfig, Spotlight};
use spotlight_conv::ConvLayer;
use spotlight_eval::EvalEngine;
use spotlight_models::Model;

fn bench_model() -> Model {
    Model::from_layers(
        "bench",
        vec![
            ConvLayer::new(1, 64, 32, 3, 3, 28, 28),
            ConvLayer::new(1, 128, 64, 1, 1, 14, 14),
            ConvLayer::new(1, 32, 16, 3, 3, 14, 14),
            ConvLayer::new(1, 96, 48, 3, 3, 14, 14),
        ],
    )
}

fn bench_parallel_search(c: &mut Criterion) {
    let hw = spotlight_accel::Baseline::NvdlaLike.edge_config();
    let models = [bench_model()];

    let mut group = c.benchmark_group("optimize_software_4_layers");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let cfg = CodesignConfig::edge()
            .sw_samples(30)
            .threads(threads)
            .build()
            .expect("bench config is valid");
        group.bench_function(format!("{threads}_threads"), |b| {
            // Fresh engine per iteration so the memo cache never turns
            // the measured work into a lookup.
            b.iter(|| {
                let tool = Spotlight::with_engine(cfg, EvalEngine::maestro().without_cache());
                black_box(tool.optimize_software(&hw, &models, 0))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("memo_cache");
    group.sample_size(10);
    let cfg = CodesignConfig::edge()
        .sw_samples(30)
        .threads(1)
        .build()
        .expect("bench config is valid");
    group.bench_function("cold_every_iter", |b| {
        b.iter(|| {
            let tool = Spotlight::with_engine(cfg, EvalEngine::maestro().without_cache());
            black_box(tool.optimize_software(&hw, &models, 0))
        })
    });
    group.bench_function("warm_shared_cache", |b| {
        let tool = Spotlight::new(cfg);
        // Warm once; subsequent iterations replay from the memo cache.
        let _ = tool.optimize_software(&hw, &models, 0);
        b.iter(|| black_box(tool.optimize_software(&hw, &models, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_search);
criterion_main!(benches);
