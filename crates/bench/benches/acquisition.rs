//! Criterion bench: acquisition-function ranking cost.
//!
//! Ranking a 64-candidate batch is the per-suggestion overhead on top of
//! surrogate prediction; LCB is a subtraction while EI evaluates the
//! normal CDF/PDF per candidate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spotlight_dabo::{argmax_ei, argmin_lcb};

fn bench_acquisition(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let preds: Vec<(f64, f64)> = (0..64)
        .map(|_| (rng.gen_range(-3.0..3.0), rng.gen_range(0.01..2.0)))
        .collect();

    let mut group = c.benchmark_group("acquisition_batch64");
    group.bench_function("lcb", |b| {
        b.iter(|| black_box(argmin_lcb(black_box(&preds), 1.5)))
    });
    group.bench_function("expected_improvement", |b| {
        b.iter(|| black_box(argmax_ei(black_box(&preds), 0.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_acquisition);
criterion_main!(benches);
