//! Figure 3 and the Section IV space-size claim.
//!
//! Prints the co-design parameter table (name, kind, value count) for the
//! edge and cloud settings, followed by the exact cardinality of the
//! hardware, software, and joint spaces for a representative layer of
//! each model — reproducing the "O(10^18) configurations for a single
//! layer of ResNet-50" claim.

use spotlight_bench::models_from_env;
use spotlight_space::{cardinality, ParamRanges};

fn main() {
    for (label, ranges) in [
        ("edge", ParamRanges::edge()),
        ("cloud", ParamRanges::cloud()),
    ] {
        println!("# {label} parameter space");
        println!("parameter,kind,values");
        for d in ranges.descriptors() {
            let values = if d.value_count == 0 {
                "shape-dependent".to_string()
            } else {
                d.value_count.to_string()
            };
            println!("{},{},{}", d.name, d.kind, values);
        }
        println!();
    }

    println!("# space cardinalities (edge ranges)");
    println!("model,layer,hw_space,sw_space,codesign_space");
    let ranges = ParamRanges::edge();
    let hw = cardinality::hw_space_size(&ranges);
    for model in models_from_env() {
        let layer = model.heaviest_layer().layer;
        let sw = cardinality::sw_space_size(&layer);
        println!(
            "{},{},{hw:.3e},{sw:.3e},{:.3e}",
            model.name(),
            layer,
            hw * sw
        );
    }
}
