//! Figure 8: multi-model co-design and generalization.
//!
//! Three Spotlight deployment scenarios per model, both EDP and delay:
//!
//! - **Spotlight-Single**: the accelerator co-designed for that model
//!   alone (Section VII-A),
//! - **Spotlight-Multi**: one accelerator co-designed for all five
//!   models simultaneously, then daBO_SW re-run per model,
//! - **Spotlight-General**: an accelerator co-designed with VGG16,
//!   ResNet-50 and MobileNetV2, evaluated on the held-out MnasNet and
//!   Transformer (so only those two get General bars).
//!
//! Expected shape (paper): Single <= General <= Multi in most cases,
//! with the counterintuitive General < Multi ordering discussed in
//! Section VII-B.

use std::collections::HashMap;

use spotlight::codesign::Spotlight;
use spotlight_bench::experiments::{rows_to_csv, Row};
use spotlight_bench::{observer_from_env, Budgets};
use spotlight_maestro::Objective;
use spotlight_models::{all_models, mnasnet, mobilenet_v2, resnet50, transformer, vgg16};

fn main() {
    let budgets = Budgets::from_env();
    let models = all_models();
    let mut rows: Vec<Row> = Vec::new();

    for objective in Objective::ALL {
        let metric = objective.to_string();

        // Single-model co-design per model.
        for model in &models {
            let values: Vec<f64> = (0..budgets.trials)
                .map(|t| {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .build()
                        .expect("derived from a valid config");
                    Spotlight::new(cfg)
                        .with_observer(observer_from_env().clone())
                        .codesign(std::slice::from_ref(model))
                        .best_cost
                })
                .collect();
            rows.push(Row {
                metric: metric.clone(),
                model: model.name().into(),
                configuration: "Spotlight-Single".into(),
                values,
            });
        }

        // Multi-model: co-design with all five, then per-model software.
        let mut multi: HashMap<String, Vec<f64>> = HashMap::new();
        for t in 0..budgets.trials {
            let cfg = budgets
                .edge_config(100 + t)
                .to_builder()
                .objective(objective)
                .build()
                .expect("derived from a valid config");
            let tool = Spotlight::new(cfg).with_observer(observer_from_env().clone());
            let out = tool.codesign(&models);
            if let Some(hw) = out.best_hw {
                let (plans, _) = tool.optimize_software(&hw, &models, 1000 + t);
                for plan in plans {
                    multi
                        .entry(plan.model_name.to_string())
                        .or_default()
                        .push(plan.objective_value(objective));
                }
            }
        }
        push_rows(&mut rows, &metric, "Spotlight-Multi", multi);

        // Generalization: train on {VGG16, ResNet-50, MobileNetV2},
        // evaluate on {MnasNet, Transformer}.
        let train = vec![vgg16(), resnet50(), mobilenet_v2()];
        let eval = vec![mnasnet(), transformer()];
        let mut general: HashMap<String, Vec<f64>> = HashMap::new();
        for t in 0..budgets.trials {
            let cfg = budgets
                .edge_config(200 + t)
                .to_builder()
                .objective(objective)
                .build()
                .expect("derived from a valid config");
            let (_, plans) = spotlight::scenarios::generalization(&cfg, &train, &eval);
            for plan in plans {
                general
                    .entry(plan.model_name.to_string())
                    .or_default()
                    .push(plan.objective_value(objective));
            }
        }
        push_rows(&mut rows, &metric, "Spotlight-General", general);
    }

    print!("{}", rows_to_csv(&rows));
}

fn push_rows(
    rows: &mut Vec<Row>,
    metric: &str,
    configuration: &str,
    per_model: HashMap<String, Vec<f64>>,
) {
    let mut entries: Vec<_> = per_model.into_iter().collect();
    entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    for (model, values) in entries {
        if values.is_empty() {
            continue;
        }
        rows.push(Row {
            metric: metric.into(),
            model,
            configuration: configuration.into(),
            values,
        });
    }
}
