//! Artifact-style orchestrator, mirroring the paper artifact's
//! `run-ae.sh`: runs one of the four modes and writes its CSV into
//! `results/`.
//!
//! ```sh
//! cargo run --release -p spotlight-bench --bin run_ae -- main-edge
//! cargo run --release -p spotlight-bench --bin run_ae -- main-cloud
//! cargo run --release -p spotlight-bench --bin run_ae -- general
//! cargo run --release -p spotlight-bench --bin run_ae -- ablation
//! cargo run --release -p spotlight-bench --bin run_ae -- all
//! ```
//!
//! Budgets follow the `SPOTLIGHT_*` environment variables (see the crate
//! docs); results land in `results/<mode>.csv` and are summarized by the
//! `compare_ae` binary.

use std::fs;
use std::process::ExitCode;

use spotlight_bench::experiments::{ablation, main_cloud, main_edge, rows_to_csv};
use spotlight_bench::{models_from_env, Budgets};
use spotlight_maestro::Objective;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let modes: Vec<&str> = match mode.as_str() {
        "main-edge" | "main-cloud" | "general" | "ablation" => {
            vec![Box::leak(mode.clone().into_boxed_str())]
        }
        "all" => vec!["main-edge", "main-cloud", "general", "ablation"],
        _ => {
            eprintln!("usage: run_ae <main-edge|main-cloud|general|ablation|all>");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return ExitCode::FAILURE;
    }
    let budgets = Budgets::from_env();
    let models = models_from_env();
    for mode in modes {
        eprintln!(
            "running {mode} ({} trials, {} hw x {} sw)...",
            budgets.trials, budgets.hw_samples, budgets.sw_samples
        );
        let csv = match mode {
            "main-edge" => rows_to_csv(&main_edge(&budgets, &models)),
            "main-cloud" => rows_to_csv(&main_cloud(&budgets, &models)),
            "ablation" => rows_to_csv(&ablation(&budgets, &models, Objective::Edp)),
            "general" => {
                // The general mode reuses the fig8 binary's logic via the
                // scenarios API, summarized per model.
                general_csv(&budgets)
            }
            _ => unreachable!(),
        };
        let path = format!("results/{mode}.csv");
        if let Err(e) = fs::write(&path, &csv) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn general_csv(budgets: &Budgets) -> String {
    use spotlight::codesign::Spotlight;
    use spotlight::scenarios::generalization;
    use spotlight_bench::experiments::Row;
    use spotlight_models::{mnasnet, mobilenet_v2, resnet50, transformer, vgg16};

    let mut rows: Vec<Row> = Vec::new();
    let objective = Objective::Edp;

    // Single-model reference for the held-out models.
    for model in [mnasnet(), transformer()] {
        let values: Vec<f64> = (0..budgets.trials)
            .map(|t| {
                let cfg = budgets
                    .edge_config(t)
                    .to_builder()
                    .objective(objective)
                    .build()
                    .expect("derived from a valid config");
                Spotlight::new(cfg)
                    .with_observer(spotlight_bench::observer_from_env().clone())
                    .codesign(std::slice::from_ref(&model))
                    .best_cost
            })
            .collect();
        rows.push(Row {
            metric: objective.to_string(),
            model: model.name().into(),
            configuration: "Spotlight-Single".into(),
            values,
        });
    }

    // Generalization: train on three models, evaluate the held-out two.
    let train = vec![vgg16(), resnet50(), mobilenet_v2()];
    let eval = vec![mnasnet(), transformer()];
    let mut general: std::collections::HashMap<String, Vec<f64>> = Default::default();
    for t in 0..budgets.trials {
        let cfg = budgets
            .edge_config(200 + t)
            .to_builder()
            .objective(objective)
            .build()
            .expect("derived from a valid config");
        let (_, plans) = generalization(&cfg, &train, &eval);
        for plan in plans {
            general
                .entry(plan.model_name.to_string())
                .or_default()
                .push(plan.objective_value(objective));
        }
    }
    for (model, values) in general {
        rows.push(Row {
            metric: objective.to_string(),
            model,
            configuration: "Spotlight-General".into(),
            values,
        });
    }
    rows.sort_by(|a, b| (&a.model, &a.configuration).cmp(&(&b.model, &b.configuration)));
    rows_to_csv(&rows)
}
