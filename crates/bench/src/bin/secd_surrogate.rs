//! Section VII-D: surrogate-model accuracy.
//!
//! Builds a dataset of random HW/SW samples with their EDP and delay,
//! trains Gaussian processes with the linear and Matérn-5/2 kernels on
//! 90% of it (on the Figure 4 features), and reports the Spearman rank
//! correlation and the top-20% hit rate on the held-out 10%.
//!
//! Expected shape (paper): low absolute correlation for both kernels
//! (rho ~ 0.08 and 0.11), Matérn slightly ahead, with roughly a quarter
//! of the true top-20% correctly ranked — enough for LCB to pick good
//! candidates.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use spotlight::features::sw_features;
use spotlight_bench::models_from_env;
use spotlight_dabo::Standardizer;
use spotlight_gp::stats::{spearman_rho, top_quantile_hit_rate};
use spotlight_gp::{GaussianProcess, Kernel, Surrogate};
use spotlight_maestro::{CostModel, Objective};
use spotlight_space::{sample, ParamRanges};

/// Total dataset size (train + test). The paper uses "thousands".
const DATASET: usize = 1200;

fn main() {
    let cost_model = CostModel::default();
    let ranges = ParamRanges::edge();
    let models = models_from_env();
    println!("metric,kernel,spearman_rho,top20_hit_rate,n_train,n_test");

    for objective in Objective::ALL {
        // Random (hw, schedule) samples over the heaviest layers of each
        // model, as daBO_SW would see them.
        let mut rng = ChaCha8Rng::seed_from_u64(2023);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        'outer: loop {
            for model in &models {
                let layer = model.heaviest_layer().layer;
                let hw = sample::sample_hw(&mut rng, &ranges);
                let sched = sample::sample_schedule(&mut rng, &layer);
                if let Ok(r) = cost_model.evaluate(&hw, &sched, &layer) {
                    xs.push(sw_features(&hw, &sched, &layer));
                    ys.push(r.objective(objective).ln());
                    if xs.len() >= DATASET {
                        break 'outer;
                    }
                }
            }
        }

        // Standardize features, as daBO's surrogate pipeline does.
        let st = Standardizer::fit(&xs);
        let xs = st.transform_all(&xs);
        let split = xs.len() * 9 / 10;
        let (train_x, test_x) = xs.split_at(split);
        let (train_y, test_y) = ys.split_at(split);

        for (name, kernel) in [
            ("linear", Kernel::linear()),
            ("matern52", Kernel::matern52(3.0)),
        ] {
            let mut gp = GaussianProcess::new(kernel, 1e-2);
            gp.fit(train_x, train_y).expect("dataset is well-formed");
            let preds: Vec<f64> = test_x.iter().map(|x| gp.predict(x).0).collect();
            let rho = spearman_rho(&preds, test_y);
            let hit = top_quantile_hit_rate(test_y, &preds, 0.2);
            println!(
                "{objective},{name},{rho:.4},{hit:.4},{},{}",
                train_x.len(),
                test_x.len()
            );
        }
    }
}
