//! Ablations of this reproduction's design choices (DESIGN.md).
//!
//! Three ablations on the per-layer software search, each the median of
//! several seeds on a representative ResNet-50 layer and on the heaviest
//! Transformer GEMM:
//!
//! 1. **Acquisition**: LCB (the paper's choice) vs expected improvement.
//! 2. **Proposal distribution**: the guided uniform/structured mixture
//!    this reproduction adds vs pure uniform proposals.
//! 3. **Surrogate kernel**: linear weight-space vs Matérn-5/2 GP at the
//!    same sample budget (the Section VII-D search-quality comparison).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use spotlight::swsearch::{
    optimize_schedule, optimize_schedule_uniform, optimize_schedule_with_acquisition,
    SwSearchConfig,
};
use spotlight::variants::Variant;
use spotlight_accel::Baseline;
use spotlight_bench::stats;
use spotlight_conv::ConvLayer;
use spotlight_dabo::Acquisition;
use spotlight_eval::EvalEngine;
use spotlight_maestro::Objective;
use spotlight_models::transformer;

const SEEDS: u64 = 5;
const SAMPLES: usize = 80;

fn main() {
    let model = EvalEngine::maestro();
    let hw = Baseline::NvdlaLike.edge_config();
    let layers = [
        ("resnet_conv3x3", ConvLayer::new(1, 128, 64, 3, 3, 28, 28)),
        ("transformer_gemm", transformer().heaviest_layer().layer),
    ];
    let cfg = SwSearchConfig {
        samples: SAMPLES,
        objective: Objective::Edp,
        variant: Variant::Spotlight,
    };

    println!("layer,configuration,min,max,median");
    for (name, layer) in layers {
        let run = |label: &str, f: &mut dyn FnMut(&mut ChaCha8Rng) -> f64| {
            let costs: Vec<f64> = (0..SEEDS)
                .map(|s| {
                    let mut rng = ChaCha8Rng::seed_from_u64(s);
                    f(&mut rng)
                })
                .collect();
            let s = stats(&costs);
            println!(
                "{name},{label},{:.4e},{:.4e},{:.4e}",
                s.min, s.max, s.median
            );
        };

        run("lcb_guided (default)", &mut |rng| {
            optimize_schedule_with_acquisition(
                &model,
                &hw,
                &layer,
                &cfg,
                Acquisition::LowerConfidenceBound,
                rng,
            )
            .objective_value(Objective::Edp)
        });
        run("ei_guided", &mut |rng| {
            optimize_schedule_with_acquisition(
                &model,
                &hw,
                &layer,
                &cfg,
                Acquisition::ExpectedImprovement,
                rng,
            )
            .objective_value(Objective::Edp)
        });
        run("lcb_uniform", &mut |rng| {
            optimize_schedule_uniform(
                &model,
                &hw,
                &layer,
                &cfg,
                Acquisition::LowerConfidenceBound,
                rng,
            )
            .objective_value(Objective::Edp)
        });
        run("matern_raw_params (Spotlight-V)", &mut |rng| {
            let vcfg = SwSearchConfig {
                variant: Variant::SpotlightV,
                ..cfg
            };
            optimize_schedule(&model, &hw, &layer, &vcfg, rng).objective_value(Objective::Edp)
        });
        run("random (Spotlight-R)", &mut |rng| {
            let rcfg = SwSearchConfig {
                variant: Variant::SpotlightR,
                ..cfg
            };
            optimize_schedule(&model, &hw, &layer, &rcfg, rng).objective_value(Objective::Edp)
        });
    }
}
