//! Section VII-C: why Spotlight wins.
//!
//! Reproduces the discussion's quantitative comparisons on ResNet-50:
//!
//! - **throughput per joule** of Spotlight-Opt vs the hand-designed
//!   accelerators (paper: 26x over Eyeriss, 28x over NVDLA, 8.3x over
//!   MAERI),
//! - the **reuse** explanation: reads-per-fill in the scratchpad and the
//!   RF for each design,
//! - the **array-shape** observation: the aspect ratio of
//!   Spotlight-optimized arrays ("long and narrow"), and
//! - the **energy breakdown** showing where each design's joules go.

use spotlight::codesign::Spotlight;
use spotlight::scenarios::{evaluate_baseline, Scale};
use spotlight_accel::Baseline;
use spotlight_bench::{models_from_env, observer_from_env, Budgets};
use spotlight_maestro::Objective;

fn main() {
    let budgets = Budgets::from_env();
    let models = models_from_env();
    let model = &models[0];
    eprintln!("analyzing {} ...", model.name());

    println!("configuration,macs_per_nj,l2_reads_per_fill,rf_reads_per_fill,aspect_ratio,energy_dram_frac,energy_mac_frac");

    // Spotlight-Opt: the best design of the first trial.
    let cfg = budgets
        .edge_config(0)
        .to_builder()
        .objective(Objective::Edp)
        .build()
        .expect("derived from a valid config");
    let out = Spotlight::new(cfg)
        .with_observer(observer_from_env().clone())
        .codesign(std::slice::from_ref(model));
    if let Some(hw) = out.best_hw {
        print_row("Spotlight-Opt", hw.aspect_ratio(), &out.best_plans[0]);
    }

    for baseline in Baseline::FIGURE6 {
        let (plan, _) = evaluate_baseline(&cfg, baseline, Scale::Edge, model);
        let hw = baseline.scaled_config(&cfg.budget());
        print_row(baseline.name(), hw.aspect_ratio(), &plan);
    }
}

fn print_row(name: &str, aspect: f64, plan: &spotlight::codesign::ModelPlan) {
    // Aggregate the per-layer reports, weighted by multiplicity.
    let mut macs = 0.0;
    let mut l2_bytes = 0.0;
    let mut dram = 0.0;
    let mut rf_accesses = 0.0;
    let mut e_dram = 0.0;
    let mut e_mac = 0.0;
    for lp in &plan.layers {
        let c = lp.count as f64;
        macs += lp.report.macs * c;
        l2_bytes += lp.report.l2_bytes * c;
        dram += lp.report.dram_bytes * c;
        rf_accesses += lp.report.rf_accesses * c;
        e_dram += lp.report.energy_dram_nj * c;
        e_mac += lp.report.energy_mac_nj * c;
    }
    let noc = (l2_bytes - dram).max(1.0);
    println!(
        "{name},{:.2},{:.2},{:.2},{:.2},{:.3},{:.3}",
        macs / plan.total_energy,
        noc / dram.max(1.0),
        rf_accesses / noc,
        aspect,
        e_dram / plan.total_energy,
        e_mac / plan.total_energy,
    );
}
