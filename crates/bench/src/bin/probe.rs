use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spotlight::swsearch::{optimize_schedule, SwSearchConfig};
use spotlight::Variant;
use spotlight_accel::Baseline;
use spotlight_conv::ConvLayer;
use spotlight_eval::EvalEngine;
use spotlight_maestro::Objective;
use spotlight_space::dataflows::rigid_schedules;

fn main() {
    let hw = Baseline::EyerissLike.edge_config();
    let layer = ConvLayer::new(1, 128, 64, 3, 3, 28, 28);
    let model = EvalEngine::maestro();
    for (st, s) in rigid_schedules(&layer, &hw) {
        match model.evaluate(&hw, &s, &layer) {
            Ok(r) => println!(
                "{st:?}: edp {:.3e} delay {:.3e} util {:.2}",
                r.edp(),
                r.delay_cycles,
                r.pe_utilization
            ),
            Err(e) => println!("{st:?}: invalid ({e})"),
        }
    }
    for samples in [50, 150, 400] {
        let cfg = SwSearchConfig {
            samples,
            objective: Objective::Edp,
            variant: Variant::Spotlight,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let r = optimize_schedule(&model, &hw, &layer, &cfg, &mut rng);
        let (_, rep) = r.best.unwrap();
        println!(
            "spotlight {samples}: edp {:.3e} delay {:.3e} util {:.2}",
            rep.edp(),
            rep.delay_cycles,
            rep.pe_utilization
        );
    }
}
