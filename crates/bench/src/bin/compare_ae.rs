//! Artifact-style summarizer, mirroring the paper artifact's
//! `compare-ae.sh`: reads a mode's CSV from `results/` and prints a
//! readable normalized table.
//!
//! ```sh
//! cargo run --release -p spotlight-bench --bin compare_ae -- main-edge
//! ```

use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    if !matches!(
        mode.as_str(),
        "main-edge" | "main-cloud" | "general" | "ablation"
    ) {
        eprintln!("usage: compare_ae <main-edge|main-cloud|general|ablation>");
        return ExitCode::FAILURE;
    }
    let path = format!("results/{mode}.csv");
    let csv = match fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path}: {e} (run `run_ae {mode}` first)");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_table(&csv));
    ExitCode::SUCCESS
}

/// Renders the compare-ae CSV as an aligned table, grouping by
/// (metric, model).
fn render_table(csv: &str) -> String {
    let mut out = String::new();
    let mut current_group = String::new();
    for line in csv.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 7 {
            continue;
        }
        let group = format!("{} / {}", f[1], f[0]);
        if group != current_group {
            out.push_str(&format!("\n== {group} ==\n"));
            out.push_str(&format!(
                "{:<20} {:>12} {:>12} {:>12} {:>10}\n",
                "configuration", "min", "max", "median", "vs Spot."
            ));
            current_group = group;
        }
        out.push_str(&format!(
            "{:<20} {:>12} {:>12} {:>12} {:>9}x\n",
            f[2], f[3], f[4], f[5], f[6]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_by_model_and_metric() {
        let csv = "metric,model,configuration,min,max,median,median_vs_spotlight\n\
                   delay,A,Spotlight,1,2,1.5,1.000\n\
                   delay,A,Eyeriss-like,3,4,3.5,2.333\n\
                   delay,B,Spotlight,5,6,5.5,1.000\n";
        let t = render_table(csv);
        assert!(t.contains("== A / delay =="));
        assert!(t.contains("== B / delay =="));
        assert!(t.contains("Eyeriss-like"));
        assert!(t.matches("==").count() == 4);
    }

    #[test]
    fn render_skips_malformed_lines() {
        let t = render_table("header\nnot,a,row\n");
        assert!(t.is_empty());
    }
}
