//! Figure 6: edge-scale single-model co-design.
//!
//! Compares Spotlight-generated edge accelerators against the
//! hand-designed baselines (Eyeriss-, NVDLA-, MAERI-like, area-scaled to
//! the same budget and running under the layerwise software optimizer)
//! and the restricted co-design tools (ConfuciuX-like, HASCO-like) on
//! per-model delay. As in the paper, HASCO is only run on the models it
//! accepts (ResNet-50 and MobileNetV2) and ConfuciuX cannot optimize
//! Transformer.
//!
//! Expected shape (paper): Spotlight lowest; Eyeriss worst among hand
//! designs; the restricted tools trailing.

use spotlight_bench::experiments::{main_edge, rows_to_csv};
use spotlight_bench::{models_from_env, Budgets};

fn main() {
    let budgets = Budgets::from_env();
    let models = models_from_env();
    print!("{}", rows_to_csv(&main_edge(&budgets, &models)));
}
