//! Interconnect deep-dive: delivery patterns, multicast gain, and trunk
//! serialization per dataflow — the quantitative backdrop for
//! Section VII-C's discussion of narrow arrays and unicast counts.
//!
//! For each rigid dataflow on each baseline accelerator, prints the
//! per-tensor delivery pattern and the NoC cost of one inner iteration.

use spotlight_accel::Baseline;
use spotlight_conv::ConvLayer;
use spotlight_noc::analyze;
use spotlight_space::dataflows::dataflow_schedule;

fn main() {
    let layers = [
        ("resnet_conv3x3", ConvLayer::new(1, 128, 64, 3, 3, 28, 28)),
        ("gemm", ConvLayer::new(1, 768, 1, 24, 32, 16, 32)),
    ];
    println!("layer,baseline,tensor,pattern,rf_elems,link_traversals,trunk_cycles,max_hops");
    for (lname, layer) in layers {
        for base in [
            Baseline::EyerissLike,
            Baseline::NvdlaLike,
            Baseline::ShiDianNaoLike,
        ] {
            let hw = base.edge_config();
            let s = dataflow_schedule(base.dataflow(), &layer, &hw);
            let a = analyze(&hw, &s, &layer);
            for (tensor, d) in [
                ("weights", a.weights),
                ("inputs", a.inputs),
                ("outputs", a.outputs),
            ] {
                println!(
                    "{lname},{},{tensor},{},{},{:.1},{:.1},{}",
                    base.name(),
                    d.pattern,
                    d.rf_tile_elems,
                    d.link_traversals,
                    d.trunk_cycles,
                    a.max_hops
                );
            }
        }
    }
}
