//! Before/after latency check for the incremental daBO refit.
//!
//! Reconstructs the legacy suggest path — a from-scratch standardizer
//! fit, an O(N d^2) normal-equations rebuild, and 64 per-candidate
//! allocating predicts — and times it against the shipping incremental
//! path (streaming sufficient statistics + one batched triangular
//! solve) on the same N=1000 history. Writes `BENCH_dabo.json` to the
//! working directory for CI to archive.

use std::io::Write;
use std::time::Instant;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use spotlight_dabo::{Dabo, DaboConfig, FnFeatureMap, Search, Standardizer};
use spotlight_gp::{BayesianLinearModel, Surrogate};

const DIM: usize = 16;
const N: usize = 1000;
const BATCH: usize = 64;
const ITERS: usize = 50;

fn sample_point(rng: &mut dyn RngCore) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn cost(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>() + 1.0
}

/// One legacy suggest: refit from the full history, then rank a fresh
/// candidate batch with per-candidate transforms and predicts.
fn legacy_suggest(features: &[Vec<f64>], ys: &[f64], rng: &mut ChaCha8Rng) -> usize {
    let st = Standardizer::fit(features);
    let xs = st.transform_all(features);
    let mut model = BayesianLinearModel::new(10.0, 1e-2);
    model.fit(&xs, ys).expect("well-formed history");
    let mut best = (0, f64::INFINITY);
    for i in 0..BATCH {
        let cand = sample_point(rng);
        let z = st.transform(&cand);
        let (mean, std) = model.predict(&z);
        let lcb = mean - 1.5 * std;
        if lcb < best.1 {
            best = (i, lcb);
        }
    }
    best.0
}

fn main() {
    // Shared history for both paths.
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    let features: Vec<Vec<f64>> = (0..N).map(|_| sample_point(&mut rng)).collect();
    let ys: Vec<f64> = features.iter().map(|f| cost(f).ln()).collect();

    // Before: from-scratch refit + per-candidate predicts, every suggest.
    let mut rng_b = ChaCha8Rng::seed_from_u64(7);
    let started = Instant::now();
    let mut sink = 0usize;
    for _ in 0..ITERS {
        sink = sink.wrapping_add(legacy_suggest(&features, &ys, &mut rng_b));
    }
    let before_us = started.elapsed().as_secs_f64() * 1e6 / ITERS as f64;

    // After: the shipping incremental path on the same history.
    let fm = FnFeatureMap::new(DIM, (|x: &Vec<f64>| x.clone()) as fn(&Vec<f64>) -> Vec<f64>);
    let mut opt = Dabo::new(
        DaboConfig::default(),
        fm,
        sample_point as fn(&mut dyn RngCore) -> Vec<f64>,
    );
    for f in &features {
        opt.observe(f.clone(), cost(f));
    }
    let mut rng_a = ChaCha8Rng::seed_from_u64(7);
    let started = Instant::now();
    for _ in 0..ITERS {
        let p = opt.suggest(&mut rng_a);
        let c = cost(&p);
        opt.observe(p, c);
    }
    let after_us = started.elapsed().as_secs_f64() * 1e6 / ITERS as f64;

    let json = format!(
        "{{\n  \"bench\": \"dabo_suggest\",\n  \"n\": {N},\n  \"dim\": {DIM},\n  \
         \"batch\": {BATCH},\n  \"iters\": {ITERS},\n  \
         \"before_us_per_suggest\": {before_us:.2},\n  \
         \"after_us_per_suggest\": {after_us:.2},\n  \
         \"speedup\": {:.2}\n}}\n",
        before_us / after_us
    );
    std::fs::File::create("BENCH_dabo.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_dabo.json");
    print!("{json}");
    // Keep the legacy loop's result observable so it cannot be elided.
    eprintln!("# legacy argmin checksum: {sink}");
}
