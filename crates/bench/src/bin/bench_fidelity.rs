//! Cheap-vs-full comparison for the multi-fidelity promotion ladder.
//!
//! Runs the same seeded co-design twice on the tiny edge scenario: once
//! at uniform full fidelity, once under the successive-halving proxy
//! ladder (`fidelity=proxy:0.25,rungs=3,eta=3`). The ladder must reach
//! the exact best plan the full-fidelity search finds while invoking
//! the backend at least 2x less often — the acceptance claim pinned in
//! EXPERIMENTS.md. Writes `BENCH_fidelity.json` to the working
//! directory for CI to archive; exits non-zero if either half of the
//! claim fails.

use std::io::Write;

use spotlight::codesign::{CodesignConfig, CodesignOutcome, Spotlight};
use spotlight_conv::ConvLayer;
use spotlight_eval::{EvalEngine, FidelitySpec};
use spotlight_models::Model;

/// The pinned ladder: quarter-MACs proxy rungs, a quarter of the field
/// promoted per rung.
const LADDER: &str = "fidelity=proxy:0.25,rungs=3,eta=4";
const SEED: u64 = 0;
const HW_SAMPLES: usize = 12;
const SW_SAMPLES: usize = 12;

fn seed() -> u64 {
    std::env::var("BENCH_FIDELITY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED)
}

/// Six layers so the quarter-MACs rung can actually carve out a small
/// subset (a 3-layer model would floor at a third of the work).
fn tiny_model() -> Model {
    Model::from_layers(
        "fidelity-bench",
        vec![
            ConvLayer::new(1, 16, 8, 3, 3, 14, 14),
            ConvLayer::new(1, 32, 16, 1, 1, 14, 14),
            ConvLayer::new(1, 24, 32, 3, 3, 7, 7),
            ConvLayer::new(1, 48, 24, 1, 1, 7, 7),
            ConvLayer::new(1, 16, 48, 3, 3, 7, 7),
            ConvLayer::new(1, 32, 16, 1, 1, 14, 14),
        ],
    )
}

fn config() -> CodesignConfig {
    CodesignConfig::edge()
        .hw_samples(HW_SAMPLES)
        .sw_samples(SW_SAMPLES)
        .seed(seed())
        .threads(1)
        .build()
        .expect("bench config is valid")
}

fn run(engine: EvalEngine) -> CodesignOutcome {
    Spotlight::with_engine(config(), engine).codesign(&[tiny_model()])
}

fn main() {
    let full = run(EvalEngine::by_name("maestro").expect("backend"));
    let ladder = run(EvalEngine::builder()
        .backend("maestro")
        .fidelity(Some(LADDER.parse::<FidelitySpec>().expect("valid spec")))
        .build()
        .expect("backend"));

    // Proxy rungs answer every query at exact per-triple fidelity, so
    // the honest cost metric is backend invocations: the ladder saves
    // by never searching the layers a demoted sample's rung skipped.
    let full_evals = full.stats.cache_misses;
    let ladder_evals = ladder.stats.cache_misses;
    let ratio = full_evals as f64 / ladder_evals as f64;
    let same_best = ladder.best_hw == full.best_hw
        && ladder.best_cost.to_bits() == full.best_cost.to_bits()
        && ladder.best_plans == full.best_plans;

    let json = format!(
        "{{\n  \"bench\": \"fidelity_ladder\",\n  \"ladder\": \"{LADDER}\",\n  \
         \"seed\": {},\n  \"hw_samples\": {HW_SAMPLES},\n  \"sw_samples\": {SW_SAMPLES},\n  \
         \"full_fidelity_backend_evals\": {full_evals},\n  \
         \"ladder_backend_evals\": {ladder_evals},\n  \
         \"eval_reduction\": {ratio:.2},\n  \
         \"best_cost\": {:.6e},\n  \"same_best_plan\": {same_best}\n}}\n",
        seed(),
        ladder.best_cost,
    );
    std::fs::File::create("BENCH_fidelity.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_fidelity.json");
    print!("{json}");

    assert!(
        same_best,
        "ladder best ({:?}, {:.6e}) diverged from full-fidelity best ({:?}, {:.6e})",
        ladder.best_hw, ladder.best_cost, full.best_hw, full.best_cost
    );
    assert!(
        ratio >= 2.0,
        "ladder only reduced backend evals by {ratio:.2}x (< 2x): {ladder_evals} vs {full_evals}"
    );
}
