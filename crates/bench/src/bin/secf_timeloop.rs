//! Section VII-F: does Spotlight overfit the MAESTRO-like model?
//!
//! For each layer, evaluates the same random samples under both
//! analytical models, sorts by each model's EDP, and reports the overlap
//! of the top-20 and bottom-20 rankings. The paper reports ~35% average
//! overlap — partial agreement, indicating the designs are not artifacts
//! of one model, while recommending re-validation of specific designs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use spotlight_bench::models_from_env;
use spotlight_maestro::CostModel;
use spotlight_space::{sample, ParamRanges};
use spotlight_timeloop::TimeloopModel;

/// Samples per layer (the paper evaluates 100 per layer).
const SAMPLES: usize = 100;
/// Extremity size compared between the two rankings.
const TOP_K: usize = 20;

fn overlap(a: &[usize], b: &[usize]) -> f64 {
    let hits = a.iter().filter(|i| b.contains(i)).count();
    hits as f64 / a.len() as f64
}

fn main() {
    let maestro = CostModel::default();
    let timeloop = TimeloopModel::default();
    let ranges = ParamRanges::edge();
    let models = models_from_env();
    println!("model,layer,samples,top20_overlap,bottom20_overlap");

    let mut grand_total = 0.0;
    let mut grand_n = 0usize;
    for model in &models {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for entry in model.layers() {
            let layer = entry.layer;
            // Collect samples feasible under BOTH models so the ranking
            // comparison is apples-to-apples.
            let mut pairs: Vec<(f64, f64)> = Vec::new();
            let mut tries = 0;
            while pairs.len() < SAMPLES && tries < SAMPLES * 50 {
                tries += 1;
                let hw = sample::sample_hw(&mut rng, &ranges);
                let sched = sample::sample_schedule(&mut rng, &layer);
                if let (Ok(m), Ok(t)) = (
                    maestro.evaluate(&hw, &sched, &layer),
                    timeloop.evaluate(&hw, &sched, &layer),
                ) {
                    pairs.push((m.edp(), t.edp()));
                }
            }
            if pairs.len() < 2 * TOP_K {
                continue;
            }
            let rank_by = |key: fn(&(f64, f64)) -> f64| -> Vec<usize> {
                let mut idx: Vec<usize> = (0..pairs.len()).collect();
                idx.sort_by(|&x, &y| key(&pairs[x]).total_cmp(&key(&pairs[y])));
                idx
            };
            let by_m = rank_by(|p| p.0);
            let by_t = rank_by(|p| p.1);
            let top = overlap(&by_m[..TOP_K], &by_t[..TOP_K]);
            let bottom = overlap(&by_m[by_m.len() - TOP_K..], &by_t[by_t.len() - TOP_K..]);
            println!(
                "{},{},{},{top:.3},{bottom:.3}",
                model.name(),
                layer,
                pairs.len()
            );
            grand_total += (top + bottom) / 2.0;
            grand_n += 1;
        }
    }
    if grand_n > 0 {
        println!("AVERAGE,,,{:.3},", grand_total / grand_n as f64);
    }
}
