//! Figure 9: relative permutation importance of each daBO_SW feature.
//!
//! For each model, a surrogate is trained on the Figure 4 features of
//! random software samples pooled across all of the model's layers (so
//! layer-shape-dependent features such as kernel parallelism vary); each
//! feature is then randomly perturbed and the mean change in the
//! surrogate's prediction recorded (Altmann/Breiman permutation
//! importance), normalized per model.
//!
//! Expected shape (paper): no single dominant feature for the CNNs;
//! "parallelism available in the kernel" dominant for Transformer, whose
//! GEMM-derived layers have large and uneven kernel planes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use spotlight::features::{all_sw_features, raw_sw_params, sw_features, SW_FEATURE_NAMES};
use spotlight_accel::Baseline;
use spotlight_bench::models_from_env;
use spotlight_gp::{permutation_importance, BayesianLinearModel, Surrogate};
use spotlight_maestro::CostModel;
use spotlight_space::sample;

/// Random feasible samples collected per layer.
const SAMPLES_PER_LAYER: usize = 60;

/// Names for the 18 raw software parameters (Spotlight-V's space).
fn raw_param_names() -> Vec<String> {
    let mut names = Vec::new();
    for d in spotlight_conv::DIMS {
        names.push(format!("L2[{d}]"));
    }
    for d in spotlight_conv::DIMS {
        names.push(format!("RF[{d}]"));
    }
    names.extend(["OuterOrder", "InnerOrder", "OuterUnroll", "InnerUnroll"].map(String::from));
    names
}

/// Runs the permutation-importance experiment for one feature space.
fn run_space(
    label: &str,
    feature_names: &[String],
    featurize: &dyn Fn(&spotlight_space::Schedule, &spotlight_conv::ConvLayer) -> Vec<f64>,
) {
    let models = models_from_env();
    let cost_model = CostModel::default();
    let hw = Baseline::NvdlaLike.edge_config();

    print!("{label}:model");
    for name in feature_names {
        print!(",{name}");
    }
    println!();

    for model in &models {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for entry in model.layers() {
            let mut collected = 0;
            let mut tries = 0;
            while collected < SAMPLES_PER_LAYER && tries < SAMPLES_PER_LAYER * 30 {
                tries += 1;
                let s = sample::sample_schedule(&mut rng, &entry.layer);
                if let Ok(r) = cost_model.evaluate(&hw, &s, &entry.layer) {
                    xs.push(featurize(&s, &entry.layer));
                    ys.push(r.edp().ln());
                    collected += 1;
                }
            }
        }
        if xs.len() < 50 {
            eprintln!("warning: too few feasible samples for {}", model.name());
            continue;
        }
        let mut surrogate = BayesianLinearModel::new(10.0, 1e-2);
        surrogate
            .fit(&xs, &ys)
            .expect("pooled dataset is well-formed");
        let imp = permutation_importance(&surrogate, &xs, &mut rng);
        print!("{label}:{}", model.name());
        for v in &imp {
            print!(",{v:.4}");
        }
        println!();
    }
}

fn main() {
    let hw = Baseline::NvdlaLike.edge_config();
    let feature_names: Vec<String> = SW_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();

    // The Figure 9 experiment proper (Spotlight's feature space).
    run_space("spotlight", &feature_names, &move |s, l| {
        sw_features(&hw, s, l)
    });

    // Section VII-D repeats: raw parameters only (Spotlight-V)...
    run_space("spotlight-v", &raw_param_names(), &|s, _| raw_sw_params(s));

    // ... and the union of features and raw parameters (Spotlight-A).
    let mut union_names = feature_names.clone();
    union_names.extend(raw_param_names());
    run_space("spotlight-a", &union_names, &move |s, l| {
        all_sw_features(&hw, s, l)
    });
}
