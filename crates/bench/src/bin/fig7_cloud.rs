//! Figure 7: cloud-scale single-model co-design.
//!
//! Spotlight with cloud-scale parameter ranges (the only configuration
//! change, Section VII) against scaled-up hand-designed accelerators,
//! for both EDP and delay. ConfuciuX and HASCO do not support
//! cloud-scale accelerators out of the box and are omitted, as in the
//! paper.

use spotlight_bench::experiments::{main_cloud, rows_to_csv};
use spotlight_bench::{models_from_env, Budgets};

fn main() {
    let budgets = Budgets::from_env();
    let models = models_from_env();
    print!("{}", rows_to_csv(&main_cloud(&budgets, &models)));
}
