//! Figure 10: convergence of each search algorithm during single-model
//! co-design.
//!
//! Runs Spotlight, Spotlight-F, Spotlight-V, Spotlight-R, Spotlight-GA,
//! plus the ConfuciuX- and HASCO-like tools, and prints each trial's
//! best-so-far objective as a function of cumulative cost-model
//! evaluations (the hardware-independent analogue of the paper's
//! wall-clock x-axis).
//!
//! Output: `metric,model,configuration,trial,evaluations,best_so_far`
//! rows — one per hardware sample — ready to plot.
//!
//! Expected shape (paper): Spotlight and Spotlight-F converge lowest;
//! Spotlight-V trails them by up to 2x; random and GA trail further;
//! ConfuciuX plateaus above all Spotlight variants.

use spotlight::codesign::Spotlight;
use spotlight::scenarios::{run_confuciux, run_hasco};
use spotlight::variants::Variant;
use spotlight_bench::{models_from_env, observer_from_env, Budgets};
use spotlight_maestro::Objective;

fn print_series(metric: &str, model: &str, config: &str, trial: u64, series: &[(u64, f64)]) {
    for (evals, best) in series {
        println!("{metric},{model},{config},{trial},{evals},{best:.6e}");
    }
}

fn main() {
    let budgets = Budgets::from_env();
    let models = models_from_env();
    println!("metric,model,configuration,trial,evaluations,best_so_far");

    for objective in Objective::ALL {
        let metric = objective.to_string();
        for model in &models {
            for variant in Variant::FIGURE10 {
                for t in 0..budgets.trials {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .variant(variant)
                        .build()
                        .expect("derived from a valid config");
                    let out = Spotlight::new(cfg)
                        .with_observer(observer_from_env().clone())
                        .codesign(std::slice::from_ref(model));
                    print_series(&metric, model.name(), variant.name(), t, &out.eval_trace);
                }
            }
            if model.name() != "Transformer" {
                for t in 0..budgets.trials {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .build()
                        .expect("derived from a valid config");
                    let out = run_confuciux(&cfg, model);
                    print_series(&metric, model.name(), "ConfuciuX", t, &out.eval_trace);
                }
            }
            if matches!(model.name(), "ResNet-50" | "MobileNetV2") {
                for t in 0..budgets.trials {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .build()
                        .expect("derived from a valid config");
                    let out = run_hasco(&cfg, model);
                    // HASCO: the paper reports only the best of 10 trials
                    // (per-sample data unavailable); we have the series,
                    // so print it like the others.
                    print_series(&metric, model.name(), "HASCO", t, &out.eval_trace);
                }
            }
        }
    }
}
