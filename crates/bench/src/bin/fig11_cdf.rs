//! Figure 11: cumulative distribution of hardware-sample quality.
//!
//! For each search algorithm and trial, prints the empirical CDF of the
//! aggregate objective of every *hardware* sample the algorithm
//! evaluated (not just the best). A curve further left means the
//! algorithm consistently proposes good configurations.
//!
//! Output: `metric,model,configuration,trial,objective,cdf` rows.
//! Infeasible samples are reported once per trial as an
//! `infeasible_fraction` row instead of points at infinity.
//!
//! Expected shape (paper): Spotlight and Spotlight-F furthest left with
//! a steep initial slope; Spotlight-R's curve reflects the raw space;
//! most Spotlight samples beat the best random sample (81.7% in the
//! paper).

use spotlight::codesign::Spotlight;
use spotlight::variants::Variant;
use spotlight_bench::{models_from_env, observer_from_env, Budgets};
use spotlight_maestro::Objective;

fn main() {
    let budgets = Budgets::from_env();
    let models = models_from_env();
    println!("metric,model,configuration,trial,objective,cdf");

    let objective = Objective::Edp;
    let metric = objective.to_string();
    for model in &models {
        for variant in Variant::FIGURE10 {
            for t in 0..budgets.trials {
                let cfg = budgets
                    .edge_config(t)
                    .to_builder()
                    .objective(objective)
                    .variant(variant)
                    .build()
                    .expect("derived from a valid config");
                let out = Spotlight::new(cfg)
                    .with_observer(observer_from_env().clone())
                    .codesign(std::slice::from_ref(model));
                let mut finite: Vec<f64> = out
                    .hw_history
                    .iter()
                    .copied()
                    .filter(|c| c.is_finite())
                    .collect();
                finite.sort_by(f64::total_cmp);
                let n = out.hw_history.len() as f64;
                for (i, c) in finite.iter().enumerate() {
                    println!(
                        "{metric},{},{},{t},{c:.6e},{:.4}",
                        model.name(),
                        variant.name(),
                        (i + 1) as f64 / n
                    );
                }
                let infeasible = out.hw_history.len() - finite.len();
                println!(
                    "{metric},{},{},{t},infeasible_fraction,{:.4}",
                    model.name(),
                    variant.name(),
                    infeasible as f64 / n
                );
            }
        }
    }
}
