//! Validation of the analytical model against the cycle-level simulator.
//!
//! Random feasible (hardware, schedule) points on representative layers
//! are costed both ways; the printout shows the distribution of
//! simulated/analytical ratios for delay and DRAM traffic, plus their
//! rank correlation. High rank correlation means the analytical model —
//! which the search uses 10^4-10^5 times per run — ranks candidates the
//! way the slower "accurate backend" would, the property the paper's
//! conclusion banks on for FPGA-emulation backends.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use spotlight_bench::models_from_env;
use spotlight_gp::stats::spearman_rho;
use spotlight_maestro::{sim::simulate, CostModel};
use spotlight_space::{sample, ParamRanges};

const SAMPLES_PER_LAYER: usize = 40;

fn main() {
    let model = CostModel::default();
    let ranges = ParamRanges::edge();
    println!("model,layer,n,delay_ratio_med,dram_ratio_med,delay_rank_corr");

    for m in models_from_env() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        // Validate on the model's three heaviest unique layers to bound
        // simulation time.
        let mut layers: Vec<_> = m.layers().to_vec();
        layers.sort_by_key(|e| std::cmp::Reverse(e.layer.macs()));
        for entry in layers.iter().take(3) {
            let layer = entry.layer;
            let mut delay_ratios = Vec::new();
            let mut dram_ratios = Vec::new();
            let mut a_delays = Vec::new();
            let mut s_delays = Vec::new();
            let mut tries = 0;
            while delay_ratios.len() < SAMPLES_PER_LAYER && tries < SAMPLES_PER_LAYER * 100 {
                tries += 1;
                let hw = sample::sample_hw(&mut rng, &ranges);
                let sched = sample::sample_schedule(&mut rng, &layer);
                let Ok(a) = model.evaluate(&hw, &sched, &layer) else {
                    continue;
                };
                let Ok(s) = simulate(&hw, &sched, &layer, 1 << 18) else {
                    continue;
                };
                delay_ratios.push(s.delay_cycles / a.delay_cycles);
                dram_ratios.push(s.dram_bytes / a.dram_bytes);
                a_delays.push(a.delay_cycles);
                s_delays.push(s.delay_cycles);
            }
            if delay_ratios.len() < 10 {
                continue;
            }
            let med = |v: &mut Vec<f64>| {
                v.sort_by(f64::total_cmp);
                v[v.len() / 2]
            };
            let rho = spearman_rho(&a_delays, &s_delays);
            println!(
                "{},{},{},{:.3},{:.3},{:.3}",
                m.name(),
                layer,
                delay_ratios.len(),
                med(&mut delay_ratios),
                med(&mut dram_ratios),
                rho
            );
        }
    }
}
