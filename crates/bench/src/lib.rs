//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure in the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (see DESIGN.md's experiment index).
//! Binaries print CSV in the spirit of the artifact's `compare-ae.sh`:
//! `configuration, min, max, median, median normalized to Spotlight`.
//!
//! Budgets are read from environment variables so the default run
//! finishes in minutes while the paper-scale configuration remains one
//! export away:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `SPOTLIGHT_TRIALS` | independent trials per configuration | 3 |
//! | `SPOTLIGHT_HW` | hardware samples per trial | 20 |
//! | `SPOTLIGHT_SW` | software samples per layer | 30 |
//! | `SPOTLIGHT_THREADS` | worker threads for the layerwise software search | 1 |
//! | `SPOTLIGHT_MODELS` | `fast` (ResNet-50 + Transformer) or `all` | fast |
//! | `SPOTLIGHT_JOURNAL` | append run events to this JSONL journal | off |
//!
//! The paper's headline setting is `SPOTLIGHT_TRIALS=10 SPOTLIGHT_HW=100
//! SPOTLIGHT_SW=100 SPOTLIGHT_MODELS=all`.

pub mod experiments;

use std::sync::OnceLock;

use spotlight::codesign::CodesignConfig;
use spotlight_models::{all_models, resnet50, transformer, Model};
use spotlight_obs::{JournalWriter, Observer};

/// Experiment budget resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Budgets {
    /// Independent trials per configuration (paper: 10).
    pub trials: u64,
    /// Hardware samples per trial (paper: 100).
    pub hw_samples: usize,
    /// Software samples per layer (paper: 100).
    pub sw_samples: usize,
    /// Worker threads for the layerwise software search (results are
    /// bit-identical at any thread count).
    pub threads: usize,
}

impl Budgets {
    /// Reads `SPOTLIGHT_TRIALS` / `SPOTLIGHT_HW` / `SPOTLIGHT_SW` /
    /// `SPOTLIGHT_THREADS` with fast defaults.
    pub fn from_env() -> Self {
        Budgets {
            trials: env_or("SPOTLIGHT_TRIALS", 3),
            hw_samples: env_or("SPOTLIGHT_HW", 20) as usize,
            sw_samples: env_or("SPOTLIGHT_SW", 30) as usize,
            threads: (env_or("SPOTLIGHT_THREADS", 1) as usize).max(1),
        }
    }

    /// A [`CodesignConfig`] template at edge scale with these budgets.
    pub fn edge_config(&self, seed: u64) -> CodesignConfig {
        CodesignConfig::edge()
            .hw_samples(self.hw_samples)
            .sw_samples(self.sw_samples)
            .seed(seed)
            .threads(self.threads)
            .build()
            .expect("env budgets are clamped to at least 1")
    }

    /// A [`CodesignConfig`] template at cloud scale with these budgets.
    pub fn cloud_config(&self, seed: u64) -> CodesignConfig {
        CodesignConfig::cloud()
            .hw_samples(self.hw_samples)
            .sw_samples(self.sw_samples)
            .seed(seed)
            .threads(self.threads)
            .build()
            .expect("env budgets are clamped to at least 1")
    }
}

/// The process-wide observer for experiment binaries: a journal writer
/// appending to `SPOTLIGHT_JOURNAL` when set, otherwise the no-op
/// observer. Resolved once; all trials of all experiments share the one
/// journal (each run brackets its events with its own manifest).
pub fn observer_from_env() -> &'static Observer {
    static OBSERVER: OnceLock<Observer> = OnceLock::new();
    OBSERVER.get_or_init(|| match std::env::var("SPOTLIGHT_JOURNAL") {
        Ok(path) if !path.is_empty() => match JournalWriter::create(&path) {
            Ok(writer) => Observer::new(std::sync::Arc::new(writer)),
            Err(e) => {
                eprintln!("warning: cannot open SPOTLIGHT_JOURNAL={path}: {e}");
                Observer::null()
            }
        },
        _ => Observer::null(),
    })
}

/// Maps `f` over `0..n` trial indices, in parallel when
/// `SPOTLIGHT_PARALLEL=1` (one OS thread per trial — trials are
/// independent seeded runs, mirroring the artifact's note that "runtime
/// can be significantly reduced if more parallelism is available").
pub fn map_trials<T: Send>(n: u64, f: impl Fn(u64) -> T + Sync + Send) -> Vec<T> {
    let parallel = std::env::var("SPOTLIGHT_PARALLEL").as_deref() == Ok("1");
    if !parallel || n <= 1 {
        return (0..n).map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n).map(|t| scope.spawn(move || f(t))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial panicked"))
            .collect()
    })
}

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The model set under evaluation: `SPOTLIGHT_MODELS=all` gives the five
/// paper models; the default `fast` set is ResNet-50 and Transformer
/// (one CNN, one GEMM-dominated model).
pub fn models_from_env() -> Vec<Model> {
    match std::env::var("SPOTLIGHT_MODELS").as_deref() {
        Ok("all") => all_models(),
        _ => vec![resnet50(), transformer()],
    }
}

/// Summary statistics over trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Minimum across trials.
    pub min: f64,
    /// Maximum across trials.
    pub max: f64,
    /// Median across trials.
    pub median: f64,
}

/// Computes min/max/median of a non-empty sample.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn stats(values: &[f64]) -> Stats {
    assert!(!values.is_empty(), "no trial values");
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let median = if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    };
    Stats {
        min: v[0],
        max: *v.last().expect("non-empty"),
        median,
    }
}

/// Prints the `compare-ae.sh`-style CSV header.
pub fn print_csv_header() {
    println!("metric,model,configuration,min,max,median,median_vs_spotlight");
}

/// Prints one CSV row, normalizing the median to Spotlight's median.
pub fn print_csv_row(metric: &str, model: &str, config: &str, s: Stats, spotlight_median: f64) {
    println!(
        "{metric},{model},{config},{:.4e},{:.4e},{:.4e},{:.3}",
        s.min,
        s.max,
        s.median,
        s.median / spotlight_median
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_odd_and_even() {
        let s = stats(&[3.0, 1.0, 2.0]);
        assert_eq!((s.min, s.median, s.max), (1.0, 2.0, 3.0));
        let s = stats(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn budgets_have_sane_defaults() {
        let b = Budgets::from_env();
        assert!(b.trials >= 1);
        assert!(b.hw_samples >= 1 && b.sw_samples >= 1);
    }

    #[test]
    fn fast_model_set_is_two_models() {
        // Only valid when SPOTLIGHT_MODELS is unset in the test env.
        if std::env::var("SPOTLIGHT_MODELS").is_err() {
            let m = models_from_env();
            assert_eq!(m.len(), 2);
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn map_trials_sequential_order_preserved() {
        let out = map_trials(5, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn map_trials_parallel_order_preserved() {
        // Force the parallel path irrespective of the env by calling the
        // scope directly through the public API with the env set.
        std::env::set_var("SPOTLIGHT_PARALLEL", "1");
        let out = map_trials(8, |t| t * t);
        std::env::remove_var("SPOTLIGHT_PARALLEL");
        assert_eq!(out, (0..8).map(|t| t * t).collect::<Vec<_>>());
    }
}
