//! Reusable experiment drivers.
//!
//! The per-figure binaries and the artifact-style `run_ae` orchestrator
//! share these functions: each returns [`Row`]s (one per configuration
//! per model per metric, carrying all trial values) that render to the
//! `compare-ae.sh` CSV format via [`rows_to_csv`].

use spotlight::codesign::Spotlight;
use spotlight::scenarios::{evaluate_baseline, run_confuciux, run_hasco, Scale};
use spotlight::Variant;
use spotlight_accel::Baseline;
use spotlight_maestro::Objective;
use spotlight_models::Model;

use crate::{map_trials, observer_from_env, stats, Budgets, Stats};

/// One experiment result series: the per-trial best objective values of
/// one configuration on one model.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Metric name (`"delay"` or `"EDP"`).
    pub metric: String,
    /// Model name.
    pub model: String,
    /// Configuration label (e.g. `"Spotlight"`, `"Eyeriss-like"`).
    pub configuration: String,
    /// One best-objective value per trial.
    pub values: Vec<f64>,
}

impl Row {
    /// Min/max/median over the trials.
    ///
    /// # Panics
    ///
    /// Panics if the row has no values.
    pub fn stats(&self) -> Stats {
        stats(&self.values)
    }
}

/// Renders rows as `metric,model,configuration,min,max,median,
/// median_vs_spotlight` CSV, normalizing each (metric, model) group to
/// its `Spotlight`-prefixed row's median (1.0 when absent).
pub fn rows_to_csv(rows: &[Row]) -> String {
    let mut out = String::from("metric,model,configuration,min,max,median,median_vs_spotlight\n");
    for row in rows {
        let s = row.stats();
        let reference = rows
            .iter()
            .find(|r| {
                r.metric == row.metric
                    && r.model == row.model
                    && (r.configuration == "Spotlight" || r.configuration == "Spotlight-Single")
            })
            .map(|r| r.stats().median)
            .unwrap_or(s.median);
        out.push_str(&format!(
            "{},{},{},{:.4e},{:.4e},{:.4e},{:.3}\n",
            row.metric,
            row.model,
            row.configuration,
            s.min,
            s.max,
            s.median,
            s.median / reference
        ));
    }
    out
}

fn codesign_values(
    budgets: &Budgets,
    objective: Objective,
    cloud: bool,
    variant: Variant,
    model: &Model,
) -> Vec<f64> {
    map_trials(budgets.trials, |t| {
        let base = if cloud {
            budgets.cloud_config(t)
        } else {
            budgets.edge_config(t)
        };
        let cfg = base
            .to_builder()
            .objective(objective)
            .variant(variant)
            .build()
            .expect("derived from a valid config");
        Spotlight::new(cfg)
            .with_observer(observer_from_env().clone())
            .codesign(std::slice::from_ref(model))
            .best_cost
    })
}

fn baseline_values(
    budgets: &Budgets,
    objective: Objective,
    cloud: bool,
    baseline: Baseline,
    model: &Model,
) -> Vec<f64> {
    map_trials(budgets.trials, |t| {
        let base = if cloud {
            budgets.cloud_config(t)
        } else {
            budgets.edge_config(t)
        };
        let cfg = base
            .to_builder()
            .objective(objective)
            .build()
            .expect("derived from a valid config");
        let scale = if cloud { Scale::Cloud } else { Scale::Edge };
        let (plan, _) = evaluate_baseline(&cfg, baseline, scale, model);
        plan.objective_value(objective)
    })
}

/// Figure 6: edge-scale single-model delay for Spotlight, the three
/// hand-designed baselines, and the restricted tools (where the paper
/// runs them).
pub fn main_edge(budgets: &Budgets, models: &[Model]) -> Vec<Row> {
    let mut rows = Vec::new();
    let objective = Objective::Delay;
    for model in models {
        rows.push(Row {
            metric: "delay".into(),
            model: model.name().into(),
            configuration: "Spotlight".into(),
            values: codesign_values(budgets, objective, false, Variant::Spotlight, model),
        });
        for baseline in Baseline::FIGURE6 {
            rows.push(Row {
                metric: "delay".into(),
                model: model.name().into(),
                configuration: baseline.name().into(),
                values: baseline_values(budgets, objective, false, baseline, model),
            });
        }
        if model.name() != "Transformer" {
            let values = (0..budgets.trials)
                .map(|t| {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .build()
                        .expect("derived from a valid config");
                    run_confuciux(&cfg, model).best_cost
                })
                .collect();
            rows.push(Row {
                metric: "delay".into(),
                model: model.name().into(),
                configuration: "ConfuciuX".into(),
                values,
            });
        }
        if matches!(model.name(), "ResNet-50" | "MobileNetV2") {
            let values = (0..budgets.trials)
                .map(|t| {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .build()
                        .expect("derived from a valid config");
                    run_hasco(&cfg, model).best_cost
                })
                .collect();
            rows.push(Row {
                metric: "delay".into(),
                model: model.name().into(),
                configuration: "HASCO".into(),
                values,
            });
        }
    }
    rows
}

/// Figure 7: cloud-scale EDP and delay for Spotlight vs the scaled-up
/// hand designs.
pub fn main_cloud(budgets: &Budgets, models: &[Model]) -> Vec<Row> {
    let mut rows = Vec::new();
    for objective in Objective::ALL {
        for model in models {
            rows.push(Row {
                metric: objective.to_string(),
                model: model.name().into(),
                configuration: "Spotlight".into(),
                values: codesign_values(budgets, objective, true, Variant::Spotlight, model),
            });
            for baseline in Baseline::FIGURE6 {
                rows.push(Row {
                    metric: objective.to_string(),
                    model: model.name().into(),
                    configuration: baseline.name().into(),
                    values: baseline_values(budgets, objective, true, baseline, model),
                });
            }
        }
    }
    rows
}

/// Figure 10 endpoints (the artifact's `ablation` mode): per-variant
/// final best objective during single-model co-design, plus the two
/// restricted tools.
pub fn ablation(budgets: &Budgets, models: &[Model], objective: Objective) -> Vec<Row> {
    let mut rows = Vec::new();
    for model in models {
        for variant in Variant::FIGURE10 {
            rows.push(Row {
                metric: objective.to_string(),
                model: model.name().into(),
                configuration: variant.name().into(),
                values: codesign_values(budgets, objective, false, variant, model),
            });
        }
        if model.name() != "Transformer" {
            let values = (0..budgets.trials)
                .map(|t| {
                    let cfg = budgets
                        .edge_config(t)
                        .to_builder()
                        .objective(objective)
                        .build()
                        .expect("derived from a valid config");
                    run_confuciux(&cfg, model).best_cost
                })
                .collect();
            rows.push(Row {
                metric: objective.to_string(),
                model: model.name().into(),
                configuration: "ConfuciuX".into(),
                values,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlight_conv::ConvLayer;

    fn tiny() -> Model {
        Model::from_layers("tiny", vec![ConvLayer::new(1, 16, 8, 3, 3, 14, 14)])
    }

    fn budgets() -> Budgets {
        Budgets {
            trials: 2,
            hw_samples: 4,
            sw_samples: 8,
            threads: 1,
        }
    }

    #[test]
    fn main_edge_produces_expected_rows() {
        let rows = main_edge(&budgets(), &[tiny()]);
        // Spotlight + 3 baselines + ConfuciuX (tiny != Transformer).
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.values.len() == 2));
        assert!(rows.iter().all(|r| r.values.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn csv_normalizes_to_spotlight() {
        let rows = vec![
            Row {
                metric: "delay".into(),
                model: "m".into(),
                configuration: "Spotlight".into(),
                values: vec![2.0, 4.0, 3.0],
            },
            Row {
                metric: "delay".into(),
                model: "m".into(),
                configuration: "Other".into(),
                values: vec![6.0],
            },
        ];
        let csv = rows_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].ends_with(",1.000"));
        assert!(lines[2].ends_with(",2.000"));
    }

    #[test]
    fn ablation_covers_all_variants() {
        let rows = ablation(&budgets(), &[tiny()], Objective::Edp);
        assert_eq!(rows.len(), Variant::FIGURE10.len() + 1);
    }
}
