//! Loop orderings of the 7-level CONV loop nest.

use std::fmt;

use crate::dim::{Dim, DIMS, NUM_DIMS};
use crate::layer::ConvLayer;

/// A permutation of the seven CONV loops, outermost first.
///
/// Loop order is one of the paper's *categorical* software parameters
/// (Figure 3c): each tiling level of the loop nest can be reordered in any
/// of `7! = 5040` ways, and the ordering determines which tensors enjoy
/// temporal reuse at that level of the memory hierarchy.
///
/// # Examples
///
/// ```
/// use spotlight_conv::{Dim, LoopPermutation};
///
/// let p = LoopPermutation::canonical();
/// assert_eq!(p.outermost(), Dim::N);
/// assert_eq!(p.innermost(), Dim::Y);
///
/// // "KCRSXYN" puts batch innermost.
/// let p: LoopPermutation = "KCRSXYN".parse()?;
/// assert_eq!(p.innermost(), Dim::N);
/// # Ok::<(), spotlight_conv::loopnest::ParseLoopPermutationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopPermutation {
    order: [Dim; NUM_DIMS],
}

impl LoopPermutation {
    /// Total number of loop permutations (`7!`).
    pub const COUNT: u64 = 5040;

    /// Builds a permutation from an explicit order, outermost first.
    ///
    /// Returns `None` if `order` is not a permutation of all seven
    /// dimensions.
    pub fn new(order: [Dim; NUM_DIMS]) -> Option<Self> {
        let mut seen = [false; NUM_DIMS];
        for d in order {
            if seen[d.index()] {
                return None;
            }
            seen[d.index()] = true;
        }
        Some(LoopPermutation { order })
    }

    /// The canonical `N K C R S X Y` order of Figure 1.
    pub fn canonical() -> Self {
        LoopPermutation { order: DIMS }
    }

    /// Decodes the `i`-th permutation in lexicographic order (Lehmer code).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 7!`.
    ///
    /// ```
    /// use spotlight_conv::LoopPermutation;
    /// assert_eq!(LoopPermutation::from_lehmer(0), LoopPermutation::canonical());
    /// assert_eq!(LoopPermutation::from_lehmer(5039).rank(), 5039);
    /// ```
    pub fn from_lehmer(i: u64) -> Self {
        assert!(i < Self::COUNT, "permutation rank out of range");
        let mut avail: Vec<Dim> = DIMS.to_vec();
        let mut rem = i;
        let mut order = [Dim::N; NUM_DIMS];
        let mut fact: u64 = Self::COUNT;
        for (slot, item) in order.iter_mut().enumerate() {
            fact /= (NUM_DIMS - slot) as u64;
            let idx = (rem / fact) as usize;
            rem %= fact;
            *item = avail.remove(idx);
        }
        LoopPermutation { order }
    }

    /// Lexicographic rank of this permutation; inverse of
    /// [`LoopPermutation::from_lehmer`].
    pub fn rank(&self) -> u64 {
        let mut avail: Vec<Dim> = DIMS.to_vec();
        let mut rank: u64 = 0;
        let mut fact: u64 = Self::COUNT;
        for (slot, d) in self.order.iter().enumerate() {
            fact /= (NUM_DIMS - slot) as u64;
            let idx = avail
                .iter()
                .position(|a| a == d)
                .expect("valid permutation");
            rank += idx as u64 * fact;
            avail.remove(idx);
        }
        rank
    }

    /// Loops outermost-first.
    #[inline]
    pub fn order(&self) -> &[Dim; NUM_DIMS] {
        &self.order
    }

    /// The outermost loop dimension.
    #[inline]
    pub fn outermost(&self) -> Dim {
        self.order[0]
    }

    /// The innermost loop dimension.
    #[inline]
    pub fn innermost(&self) -> Dim {
        self.order[NUM_DIMS - 1]
    }

    /// Position of dimension `d` (0 = outermost).
    #[inline]
    pub fn position(&self, d: Dim) -> usize {
        self.order
            .iter()
            .position(|&o| o == d)
            .expect("permutation contains every dim")
    }

    /// Swaps the loops at positions `i` and `j` (a GA mutation primitive).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn swapped(mut self, i: usize, j: usize) -> Self {
        self.order.swap(i, j);
        self
    }

    /// For a tensor selected by `indexes` (e.g. [`Dim::indexes_weights`]),
    /// the product of loop *trip counts* strictly inner to the innermost
    /// loop that indexes the tensor. Those inner iterations reuse the same
    /// tensor tile, so this is the tensor's temporal reuse factor at this
    /// level of the hierarchy.
    ///
    /// `trips` gives the per-dimension trip count at this level (canonical
    /// order). Loops with trip count 1 are degenerate and never limit reuse.
    ///
    /// ```
    /// use spotlight_conv::{Dim, LoopPermutation};
    /// // Weights indexed by K,C,R,S; with X,Y innermost their trips multiply
    /// // into weight reuse.
    /// let p: LoopPermutation = "NKCRSXY".parse().unwrap();
    /// let trips = [1, 2, 2, 1, 1, 4, 5]; // N,K,C,R,S,X,Y
    /// assert_eq!(p.temporal_reuse(&trips, |d| d.indexes_weights()), 20);
    /// ```
    pub fn temporal_reuse(&self, trips: &[u64; NUM_DIMS], indexes: impl Fn(Dim) -> bool) -> u64 {
        let mut reuse: u64 = 1;
        for &d in self.order.iter().rev() {
            if indexes(d) && trips[d.index()] > 1 {
                break;
            }
            reuse *= trips[d.index()];
        }
        reuse
    }

    /// Renders the loop nest of Figure 1 for the given layer, one loop per
    /// line, outermost first.
    pub fn render(&self, layer: &ConvLayer) -> String {
        let mut out = String::new();
        for (depth, &d) in self.order.iter().enumerate() {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}for {} in 0..{} {{\n",
                d.name().to_lowercase(),
                layer.extent(d)
            ));
        }
        let body_indent = "  ".repeat(NUM_DIMS);
        out.push_str(&format!(
            "{body_indent}O[n][k][x][y] += W[k][c][r][s] * I[n][c][x*{}+r][y*{}+s];\n",
            layer.stride, layer.stride
        ));
        for depth in (0..NUM_DIMS).rev() {
            out.push_str(&format!("{}}}\n", "  ".repeat(depth)));
        }
        out
    }
}

impl Default for LoopPermutation {
    fn default() -> Self {
        Self::canonical()
    }
}

impl fmt::Display for LoopPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in self.order {
            f.write_str(d.name())?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`LoopPermutation`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLoopPermutationError(String);

impl fmt::Display for ParseLoopPermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid loop permutation `{}`", self.0)
    }
}

impl std::error::Error for ParseLoopPermutationError {}

impl std::str::FromStr for LoopPermutation {
    type Err = ParseLoopPermutationError;

    /// Parses strings like `"NKCRSXY"` or `"K C R S X Y N"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let letters: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
        if letters.len() != NUM_DIMS {
            return Err(ParseLoopPermutationError(s.to_string()));
        }
        let mut order = [Dim::N; NUM_DIMS];
        for (i, ch) in letters.iter().enumerate() {
            order[i] = ch
                .to_string()
                .parse()
                .map_err(|_| ParseLoopPermutationError(s.to_string()))?;
        }
        LoopPermutation::new(order).ok_or_else(|| ParseLoopPermutationError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_roundtrip() {
        let p = LoopPermutation::canonical();
        assert_eq!(p.to_string(), "NKCRSXY");
        assert_eq!(p.rank(), 0);
    }

    #[test]
    fn new_rejects_duplicates() {
        let dup = [Dim::N, Dim::N, Dim::C, Dim::R, Dim::S, Dim::X, Dim::Y];
        assert!(LoopPermutation::new(dup).is_none());
    }

    #[test]
    fn parse_rejects_short_and_garbage() {
        assert!("NKC".parse::<LoopPermutation>().is_err());
        assert!("NKCRSXZ".parse::<LoopPermutation>().is_err());
        assert!("NKCRSXX".parse::<LoopPermutation>().is_err());
    }

    #[test]
    fn position_is_inverse_of_order() {
        let p: LoopPermutation = "YXSRCKN".parse().unwrap();
        for (i, &d) in p.order().iter().enumerate() {
            assert_eq!(p.position(d), i);
        }
    }

    #[test]
    fn temporal_reuse_ignores_degenerate_loops() {
        // K placed innermost but with trip count 1: weights still reused
        // across the X loop outside it.
        let p: LoopPermutation = "NCRSYXK".parse().unwrap();
        let trips = [1, 1, 1, 1, 1, 4, 1];
        assert_eq!(p.temporal_reuse(&trips, |d| d.indexes_weights()), 4);
    }

    #[test]
    fn temporal_reuse_full_when_tensor_never_indexed() {
        let p = LoopPermutation::canonical();
        let trips = [2, 3, 4, 1, 1, 5, 6];
        let total: u64 = trips.iter().product();
        assert_eq!(p.temporal_reuse(&trips, |_| false), total);
    }

    #[test]
    fn render_contains_all_loops() {
        let l = ConvLayer::new(1, 2, 3, 3, 3, 8, 8);
        let txt = LoopPermutation::canonical().render(&l);
        for d in DIMS {
            assert!(txt.contains(&format!("for {}", d.name().to_lowercase())));
        }
        assert!(txt.contains("+="));
    }

    proptest! {
        #[test]
        fn lehmer_roundtrip(i in 0u64..LoopPermutation::COUNT) {
            let p = LoopPermutation::from_lehmer(i);
            prop_assert_eq!(p.rank(), i);
        }

        #[test]
        fn lehmer_produces_valid_permutations(i in 0u64..LoopPermutation::COUNT) {
            let p = LoopPermutation::from_lehmer(i);
            let mut seen = [false; NUM_DIMS];
            for d in p.order() {
                prop_assert!(!seen[d.index()]);
                seen[d.index()] = true;
            }
        }

        #[test]
        fn display_parse_roundtrip(i in 0u64..LoopPermutation::COUNT) {
            let p = LoopPermutation::from_lehmer(i);
            let q: LoopPermutation = p.to_string().parse().unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn reuse_divides_total_trips(
            i in 0u64..LoopPermutation::COUNT,
            trips in proptest::array::uniform7(1u64..6),
        ) {
            let p = LoopPermutation::from_lehmer(i);
            let total: u64 = trips.iter().product();
            let reuse = p.temporal_reuse(&trips, |d| d.indexes_inputs());
            prop_assert_eq!(total % reuse, 0);
        }
    }
}
