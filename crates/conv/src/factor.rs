//! Divisor and factorization utilities.
//!
//! The co-design space only admits loop tilings whose tile sizes evenly
//! divide the layer extents (Section IV-A2), so legal tile sizes for a
//! dimension of extent `n` are exactly the divisors of `n`, and a legal
//! 3-level tiling is a *divisor chain* `t2 | t1 | n`. This module
//! enumerates and counts those objects.

/// Returns all divisors of `n` in ascending order.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use spotlight_conv::factor::divisors;
/// assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
/// ```
pub fn divisors(n: u64) -> Vec<u64> {
    assert!(n > 0, "divisors of zero are undefined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Number of divisors of `n`.
///
/// ```
/// use spotlight_conv::factor::divisor_count;
/// assert_eq!(divisor_count(36), 9);
/// ```
pub fn divisor_count(n: u64) -> u64 {
    prime_factorization(n)
        .into_iter()
        .map(|(_, e)| e as u64 + 1)
        .product()
}

/// Prime factorization of `n` as `(prime, exponent)` pairs in ascending
/// prime order. Returns an empty vector for `n == 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// use spotlight_conv::factor::prime_factorization;
/// assert_eq!(prime_factorization(360), vec![(2, 3), (3, 2), (5, 1)]);
/// ```
pub fn prime_factorization(mut n: u64) -> Vec<(u64, u32)> {
    assert!(n > 0, "cannot factor zero");
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            out.push((p, e));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// Number of length-`levels` divisor chains `t_{levels-1} | ... | t_1 | n`
/// ending at `n`. Equivalently, the number of ordered factorizations of `n`
/// into `levels` factors.
///
/// For `n = p1^e1 * p2^e2 * ...` this is the product over primes of the
/// number of weak compositions of `e_i` into `levels` parts,
/// `C(e_i + levels - 1, levels - 1)`.
///
/// ```
/// use spotlight_conv::factor::divisor_chain_count;
/// // 12 = 2^2 * 3: C(4,2) * C(3,2) = 6 * 3 = 18 ordered triples.
/// assert_eq!(divisor_chain_count(12, 3), 18);
/// assert_eq!(divisor_chain_count(1, 3), 1);
/// ```
pub fn divisor_chain_count(n: u64, levels: u32) -> u64 {
    prime_factorization(n)
        .into_iter()
        .map(|(_, e)| binomial(e as u64 + levels as u64 - 1, levels as u64 - 1))
        .product()
}

/// Enumerates every 3-level divisor chain `(t0, t1, t2)` with
/// `t0 = n`, `t1 | t0` and `t2 | t1`. The first component is always `n`
/// because the outermost "tile" of a dimension is the full extent.
///
/// ```
/// use spotlight_conv::factor::tiling_chains;
/// let chains = tiling_chains(4);
/// assert!(chains.contains(&(4, 2, 1)));
/// assert!(chains.iter().all(|&(a, b, c)| a % b == 0 && b % c == 0));
/// ```
pub fn tiling_chains(n: u64) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::new();
    for t1 in divisors(n) {
        for t2 in divisors(t1) {
            out.push((n, t1, t2));
        }
    }
    out
}

/// Binomial coefficient `C(n, k)` computed without overflow for the small
/// arguments used here.
///
/// ```
/// use spotlight_conv::factor::binomial;
/// assert_eq!(binomial(5, 2), 10);
/// assert_eq!(binomial(4, 0), 1);
/// ```
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

/// Greatest common divisor.
///
/// ```
/// use spotlight_conv::factor::gcd;
/// assert_eq!(gcd(12, 18), 6);
/// ```
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

/// Divides `a / b` rounding up.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// ```
/// use spotlight_conv::factor::ceil_div;
/// assert_eq!(ceil_div(10, 3), 4);
/// assert_eq!(ceil_div(9, 3), 3);
/// ```
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a.div_ceil(b)
}

/// Returns the divisor of `n` closest to `target` (ties resolved downward).
///
/// Used to snap continuous search proposals onto the legal (ordinal) tile
/// grid.
///
/// ```
/// use spotlight_conv::factor::nearest_divisor;
/// assert_eq!(nearest_divisor(12, 5), 4);
/// assert_eq!(nearest_divisor(12, 100), 12);
/// ```
pub fn nearest_divisor(n: u64, target: u64) -> u64 {
    divisors(n)
        .into_iter()
        .min_by_key(|&d| {
            let dist = d.abs_diff(target);
            (dist, d) // prefer the smaller divisor on ties
        })
        .expect("n > 0 always has divisors")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn divisors_of_prime() {
        assert_eq!(divisors(13), vec![1, 13]);
    }

    #[test]
    fn divisors_of_one() {
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn chain_count_matches_enumeration_small() {
        for n in 1..=64u64 {
            assert_eq!(
                divisor_chain_count(n, 3),
                tiling_chains(n).len() as u64,
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn nearest_divisor_is_exact_when_target_divides() {
        assert_eq!(nearest_divisor(24, 6), 6);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(7, 13), 1);
    }

    proptest! {
        #[test]
        fn divisors_divide(n in 1u64..10_000) {
            for d in divisors(n) {
                prop_assert_eq!(n % d, 0);
            }
        }

        #[test]
        fn divisors_sorted_and_unique(n in 1u64..10_000) {
            let ds = divisors(n);
            prop_assert!(ds.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn divisor_count_matches_list(n in 1u64..5_000) {
            prop_assert_eq!(divisor_count(n), divisors(n).len() as u64);
        }

        #[test]
        fn factorization_reconstructs(n in 1u64..100_000) {
            let prod: u64 = prime_factorization(n)
                .into_iter()
                .map(|(p, e)| p.pow(e))
                .product();
            prop_assert_eq!(prod, n);
        }

        #[test]
        fn chains_are_chains(n in 1u64..512) {
            for (t0, t1, t2) in tiling_chains(n) {
                prop_assert_eq!(t0, n);
                prop_assert_eq!(t0 % t1, 0);
                prop_assert_eq!(t1 % t2, 0);
            }
        }

        #[test]
        fn nearest_divisor_divides(n in 1u64..10_000, t in 0u64..20_000) {
            prop_assert_eq!(n % nearest_divisor(n, t), 0);
        }

        #[test]
        fn ceil_div_bounds(a in 0u64..1_000_000, b in 1u64..1_000) {
            let q = ceil_div(a, b);
            prop_assert!(q * b >= a);
            prop_assert!(q == 0 || (q - 1) * b < a);
        }
    }
}
