//! The seven loop dimensions of a CONV layer.

use std::fmt;
use std::str::FromStr;

/// Number of loop dimensions in the CONV loop nest.
pub const NUM_DIMS: usize = 7;

/// One of the seven loop dimensions of the CONV computation (Figure 1 of the
/// paper).
///
/// | Dim | Meaning                          |
/// |-----|----------------------------------|
/// | `N` | batch (number of input tensors)  |
/// | `K` | output channels (weight tensors) |
/// | `C` | input channels                   |
/// | `R` | weight rows                      |
/// | `S` | weight columns                   |
/// | `X` | output rows                      |
/// | `Y` | output columns                   |
///
/// `X` and `Y` index *output* pixels throughout this workspace; the input
/// footprint of an output tile is derived via [`crate::ConvLayer`].
///
/// # Examples
///
/// ```
/// use spotlight_conv::Dim;
/// assert_eq!(Dim::K.index(), 1);
/// assert_eq!("C".parse::<Dim>().unwrap(), Dim::C);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// Batch dimension.
    N,
    /// Output-channel (filter) dimension.
    K,
    /// Input-channel dimension.
    C,
    /// Weight-row dimension.
    R,
    /// Weight-column dimension.
    S,
    /// Output-row dimension.
    X,
    /// Output-column dimension.
    Y,
}

/// All seven dimensions in canonical order `N, K, C, R, S, X, Y`.
pub const DIMS: [Dim; NUM_DIMS] = [Dim::N, Dim::K, Dim::C, Dim::R, Dim::S, Dim::X, Dim::Y];

impl Dim {
    /// Canonical index of this dimension in [`DIMS`] (0 through 6).
    ///
    /// ```
    /// use spotlight_conv::{Dim, DIMS};
    /// for (i, d) in DIMS.iter().enumerate() {
    ///     assert_eq!(d.index(), i);
    /// }
    /// ```
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::K => 1,
            Dim::C => 2,
            Dim::R => 3,
            Dim::S => 4,
            Dim::X => 5,
            Dim::Y => 6,
        }
    }

    /// Inverse of [`Dim::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 7`.
    ///
    /// ```
    /// use spotlight_conv::Dim;
    /// assert_eq!(Dim::from_index(3), Dim::R);
    /// ```
    #[inline]
    pub const fn from_index(i: usize) -> Dim {
        match i {
            0 => Dim::N,
            1 => Dim::K,
            2 => Dim::C,
            3 => Dim::R,
            4 => Dim::S,
            5 => Dim::X,
            6 => Dim::Y,
            _ => panic!("dimension index out of range"),
        }
    }

    /// Single-letter name of the dimension.
    ///
    /// ```
    /// use spotlight_conv::Dim;
    /// assert_eq!(Dim::X.name(), "X");
    /// ```
    pub const fn name(self) -> &'static str {
        match self {
            Dim::N => "N",
            Dim::K => "K",
            Dim::C => "C",
            Dim::R => "R",
            Dim::S => "S",
            Dim::X => "X",
            Dim::Y => "Y",
        }
    }

    /// Whether this dimension indexes the *weight* tensor (`K, C, R, S`).
    ///
    /// ```
    /// use spotlight_conv::Dim;
    /// assert!(Dim::R.indexes_weights());
    /// assert!(!Dim::X.indexes_weights());
    /// ```
    pub const fn indexes_weights(self) -> bool {
        matches!(self, Dim::K | Dim::C | Dim::R | Dim::S)
    }

    /// Whether this dimension indexes the *input* tensor (`N, C, X, Y, R, S`).
    ///
    /// `R` and `S` shift the input window, so they index the input footprint
    /// even though they are weight dimensions.
    ///
    /// ```
    /// use spotlight_conv::Dim;
    /// assert!(Dim::C.indexes_inputs());
    /// assert!(!Dim::K.indexes_inputs());
    /// ```
    pub const fn indexes_inputs(self) -> bool {
        !matches!(self, Dim::K)
    }

    /// Whether this dimension indexes the *output* tensor (`N, K, X, Y`).
    ///
    /// ```
    /// use spotlight_conv::Dim;
    /// assert!(Dim::K.indexes_outputs());
    /// assert!(!Dim::C.indexes_outputs());
    /// ```
    pub const fn indexes_outputs(self) -> bool {
        matches!(self, Dim::N | Dim::K | Dim::X | Dim::Y)
    }

    /// Whether this dimension is a *reduction* dimension (`C, R, S`): its
    /// iterations accumulate into the same output element.
    ///
    /// ```
    /// use spotlight_conv::Dim;
    /// assert!(Dim::C.is_reduction());
    /// assert!(!Dim::N.is_reduction());
    /// ```
    pub const fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Dim`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimError(pub String);

impl fmt::Display for ParseDimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown CONV dimension `{}`", self.0)
    }
}

impl std::error::Error for ParseDimError {}

impl FromStr for Dim {
    type Err = ParseDimError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "N" | "n" => Ok(Dim::N),
            "K" | "k" => Ok(Dim::K),
            "C" | "c" => Ok(Dim::C),
            "R" | "r" => Ok(Dim::R),
            "S" | "s" => Ok(Dim::S),
            "X" | "x" => Ok(Dim::X),
            "Y" | "y" => Ok(Dim::Y),
            other => Err(ParseDimError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in 0..NUM_DIMS {
            assert_eq!(Dim::from_index(i).index(), i);
        }
    }

    #[test]
    fn canonical_order_is_nkcrsxy() {
        let names: Vec<&str> = DIMS.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["N", "K", "C", "R", "S", "X", "Y"]);
    }

    #[test]
    fn parse_accepts_both_cases() {
        assert_eq!("x".parse::<Dim>().unwrap(), Dim::X);
        assert_eq!("Y".parse::<Dim>().unwrap(), Dim::Y);
        assert!("Z".parse::<Dim>().is_err());
    }

    #[test]
    fn parse_error_displays_offending_input() {
        let err = "Q".parse::<Dim>().unwrap_err();
        assert!(err.to_string().contains('Q'));
    }

    #[test]
    fn tensor_membership_is_consistent() {
        // Every dimension indexes at least one tensor, and reduction
        // dimensions never index the output.
        for d in DIMS {
            assert!(d.indexes_weights() || d.indexes_inputs() || d.indexes_outputs());
            if d.is_reduction() {
                assert!(!d.indexes_outputs());
            } else {
                assert!(d.indexes_outputs());
            }
        }
    }

    #[test]
    fn weight_dims_are_kcrs() {
        let w: Vec<Dim> = DIMS
            .iter()
            .copied()
            .filter(|d| d.indexes_weights())
            .collect();
        assert_eq!(w, [Dim::K, Dim::C, Dim::R, Dim::S]);
    }

    #[test]
    fn display_matches_name() {
        for d in DIMS {
            assert_eq!(format!("{d}"), d.name());
        }
    }
}
