#![warn(missing_docs)]

//! Convolution-layer shapes, loop nests, and lowering for the Spotlight
//! reproduction.
//!
//! Deep-learning accelerators in this workspace operate on a single
//! primitive: the 7-dimensional convolution loop nest of the paper's
//! Figure 1. This crate provides:
//!
//! - [`Dim`]: the seven loop dimensions `N, K, C, R, S, X, Y`,
//! - [`ConvLayer`]: a concrete layer shape (extents plus stride),
//! - [`LoopPermutation`]: an ordering of the seven loops,
//! - [`lower`]: lowering of GEMM, fully-connected, and depth-wise separable
//!   layers onto plain CONV layers (the col2im trick of Section II-A),
//! - [`factor`]: divisor and factorization utilities used to enumerate the
//!   *legal* loop tilings (those that evenly divide the layer shape).
//!
//! # Examples
//!
//! ```
//! use spotlight_conv::{ConvLayer, Dim};
//!
//! // An early ResNet-50 layer: 64 filters of 7x7x3 over a 224x224 image.
//! let layer = ConvLayer::new(1, 64, 3, 7, 7, 224, 224).with_stride(2);
//! assert_eq!(layer.extent(Dim::K), 64);
//! assert!(layer.macs() > 100_000_000);
//! ```

pub mod dim;
pub mod factor;
pub mod layer;
pub mod loopnest;
pub mod lower;

pub use dim::{Dim, DIMS, NUM_DIMS};
pub use layer::ConvLayer;
pub use loopnest::LoopPermutation;
pub use lower::{depthwise_separable_to_conv, fc_to_conv, gemm_to_conv};
