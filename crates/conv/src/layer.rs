//! Concrete CONV layer shapes.

use std::fmt;

use crate::dim::{Dim, DIMS, NUM_DIMS};

/// The shape of a single CONV layer: the seven loop extents of the paper's
/// Figure 1 plus a spatial stride.
///
/// `x` and `y` are the *output* extents. The corresponding input extents are
/// recovered with [`ConvLayer::input_rows`]/[`ConvLayer::input_cols`], which
/// account for the kernel halo and stride. Keeping output extents primary
/// makes every loop bound a true iteration count, which is what tilings
/// divide.
///
/// # Examples
///
/// ```
/// use spotlight_conv::{ConvLayer, Dim};
///
/// let l = ConvLayer::new(1, 128, 64, 3, 3, 56, 56);
/// assert_eq!(l.extent(Dim::C), 64);
/// assert_eq!(l.input_rows(), 58); // 56 outputs need 56 + 3 - 1 input rows
/// assert_eq!(l.macs(), 1 * 128 * 64 * 3 * 3 * 56 * 56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    /// Batch size.
    pub n: u64,
    /// Output channels.
    pub k: u64,
    /// Input channels.
    pub c: u64,
    /// Weight rows.
    pub r: u64,
    /// Weight columns.
    pub s: u64,
    /// Output rows.
    pub x: u64,
    /// Output columns.
    pub y: u64,
    /// Spatial stride applied in both X and Y (1 for dense CONV).
    pub stride: u64,
    /// Optional human-readable name (e.g. `"conv2_1"`).
    pub name: &'static str,
}

impl ConvLayer {
    /// Creates a stride-1 layer from the seven extents, in canonical
    /// `N, K, C, R, S, X, Y` order.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(n: u64, k: u64, c: u64, r: u64, s: u64, x: u64, y: u64) -> Self {
        let layer = ConvLayer {
            n,
            k,
            c,
            r,
            s,
            x,
            y,
            stride: 1,
            name: "",
        };
        layer.validate();
        layer
    }

    /// Returns the layer with the given stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Returns the layer with a human-readable name attached.
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    fn validate(&self) {
        for d in DIMS {
            assert!(self.extent(d) > 0, "layer extent {d} must be positive");
        }
    }

    /// Loop extent of dimension `d`.
    #[inline]
    pub fn extent(&self, d: Dim) -> u64 {
        match d {
            Dim::N => self.n,
            Dim::K => self.k,
            Dim::C => self.c,
            Dim::R => self.r,
            Dim::S => self.s,
            Dim::X => self.x,
            Dim::Y => self.y,
        }
    }

    /// All seven extents in canonical order.
    ///
    /// ```
    /// use spotlight_conv::ConvLayer;
    /// let l = ConvLayer::new(1, 2, 3, 4, 5, 6, 7);
    /// assert_eq!(l.extents(), [1, 2, 3, 4, 5, 6, 7]);
    /// ```
    pub fn extents(&self) -> [u64; NUM_DIMS] {
        [self.n, self.k, self.c, self.r, self.s, self.x, self.y]
    }

    /// Number of input rows consumed to produce `x` output rows.
    #[inline]
    pub fn input_rows(&self) -> u64 {
        input_extent(self.x, self.r, self.stride)
    }

    /// Number of input columns consumed to produce `y` output columns.
    #[inline]
    pub fn input_cols(&self) -> u64 {
        input_extent(self.y, self.s, self.stride)
    }

    /// Total multiply-accumulate operations to compute the layer.
    #[inline]
    pub fn macs(&self) -> u64 {
        self.n * self.k * self.c * self.r * self.s * self.x * self.y
    }

    /// Number of weight elements (`K*C*R*S`).
    #[inline]
    pub fn weight_elems(&self) -> u64 {
        self.k * self.c * self.r * self.s
    }

    /// Number of input elements (`N*C*Xin*Yin`).
    #[inline]
    pub fn input_elems(&self) -> u64 {
        self.n * self.c * self.input_rows() * self.input_cols()
    }

    /// Number of output elements (`N*K*X*Y`).
    #[inline]
    pub fn output_elems(&self) -> u64 {
        self.n * self.k * self.x * self.y
    }

    /// Arithmetic intensity: MACs per element moved if every tensor were
    /// touched exactly once. Used as a quick workload descriptor.
    ///
    /// ```
    /// use spotlight_conv::ConvLayer;
    /// let l = ConvLayer::new(1, 64, 64, 3, 3, 56, 56);
    /// assert!(l.arithmetic_intensity() > 1.0);
    /// ```
    pub fn arithmetic_intensity(&self) -> f64 {
        let moved = self.weight_elems() + self.input_elems() + self.output_elems();
        self.macs() as f64 / moved as f64
    }

    /// Whether this layer is point-wise (1x1 kernel), the shape produced by
    /// lowering GEMM and the second half of depth-wise separable CONVs.
    pub fn is_pointwise(&self) -> bool {
        self.r == 1 && self.s == 1
    }

    /// Size of the co-design *software* space for this layer: the number of
    /// (tiling, permutation, unrolling) choices counted the way Section IV
    /// counts them. Tilings are 3-level divisor chains per dimension; both
    /// tile levels can be reordered in `7!` ways each and each level unrolls
    /// one of 7 dimensions.
    ///
    /// Returned as `f64` because the count overflows `u64` for real layers.
    pub fn sw_space_size(&self) -> f64 {
        let tilings: f64 = DIMS
            .iter()
            .map(|&d| crate::factor::divisor_chain_count(self.extent(d), 3) as f64)
            .product();
        let permutations = (5040.0f64) * 5040.0; // (7!)^2
        let unrolls = 49.0; // 7^2
        tilings * permutations * unrolls
    }
}

/// Input extent needed to produce `out` outputs with kernel size `kernel`
/// and the given stride: `(out - 1) * stride + kernel`.
#[inline]
pub fn input_extent(out: u64, kernel: u64, stride: u64) -> u64 {
    (out - 1) * stride + kernel
}

impl fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.name.is_empty() {
            write!(f, "{}: ", self.name)?;
        }
        write!(
            f,
            "N{} K{} C{} R{} S{} X{} Y{}",
            self.n, self.k, self.c, self.r, self.s, self.x, self.y
        )?;
        if self.stride != 1 {
            write!(f, " /{}", self.stride)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_is_product_of_extents() {
        let l = ConvLayer::new(2, 3, 5, 7, 11, 13, 17);
        assert_eq!(l.macs(), 2 * 3 * 5 * 7 * 11 * 13 * 17);
    }

    #[test]
    fn input_extent_accounts_for_stride_and_halo() {
        // 112 outputs from a 7x7 kernel at stride 2 need 229 input rows.
        let l = ConvLayer::new(1, 64, 3, 7, 7, 112, 112).with_stride(2);
        assert_eq!(l.input_rows(), 111 * 2 + 7);
    }

    #[test]
    fn pointwise_detection() {
        assert!(ConvLayer::new(1, 8, 8, 1, 1, 4, 4).is_pointwise());
        assert!(!ConvLayer::new(1, 8, 8, 3, 3, 4, 4).is_pointwise());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_extent_rejected() {
        let _ = ConvLayer::new(1, 0, 8, 3, 3, 4, 4);
    }

    #[test]
    fn display_includes_stride_only_when_nontrivial() {
        let l = ConvLayer::new(1, 2, 3, 4, 5, 6, 7);
        assert!(!format!("{l}").contains('/'));
        let l = l.with_stride(2);
        assert!(format!("{l}").contains("/2"));
    }

    #[test]
    fn sw_space_is_astronomical_for_resnet_layer() {
        // The paper quotes O(10^18) for a single ResNet-50 layer.
        let l = ConvLayer::new(1, 256, 128, 3, 3, 28, 28);
        assert!(l.sw_space_size() > 1e12, "space = {}", l.sw_space_size());
    }

    #[test]
    fn extents_round_trip_through_extent() {
        let l = ConvLayer::new(2, 4, 6, 3, 3, 8, 10);
        for (i, d) in DIMS.iter().enumerate() {
            assert_eq!(l.extent(*d), l.extents()[i]);
        }
    }

    #[test]
    fn arithmetic_intensity_is_finite_and_positive() {
        let l = ConvLayer::new(1, 16, 16, 3, 3, 14, 14);
        let ai = l.arithmetic_intensity();
        assert!(ai.is_finite() && ai > 0.0);
    }
}
