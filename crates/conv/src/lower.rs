//! Lowering of non-CONV layer types onto the CONV primitive.
//!
//! Section II-A of the paper: GEMM is transformed to CONV without loss of
//! generality (col2im), fully-connected layers are GEMMs, and a depth-wise
//! separable convolution is computed as its two constituent parts
//! independently. "Some inefficiency may be introduced during the
//! transformation" — notably GEMM-derived CONVs have degenerate spatial
//! extents, producing the large uneven kernel shapes that the paper blames
//! for Eyeriss's poor Transformer performance.

use crate::layer::ConvLayer;

/// Lowers a GEMM `C[m][n] = A[m][k] * B[k][n]` onto a CONV layer.
///
/// The mapping follows col2im: the `M` rows of the output become output
/// channels (`K` filters), the reduction dimension `K_gemm` is reshaped
/// into the *kernel plane* (`R x S`), and the `N_gemm` columns become the
/// output spatial plane (`X x Y`) over a single input channel. This is
/// the paper's conversion: it "results in large and uneven kernel sizes"
/// (Section VII-D) — the property behind Eyeriss's poor Transformer
/// performance and the dominance of the kernel-parallelism feature — and
/// the overlapping input windows reproduce col2im's duplicated-input
/// inefficiency ("some inefficiency may be introduced", Section II-A).
/// The layer computes exactly `M * N * K_gemm` MACs.
///
/// # Panics
///
/// Panics if any dimension is zero.
///
/// # Examples
///
/// ```
/// use spotlight_conv::gemm_to_conv;
/// let l = gemm_to_conv(512, 64, 512);
/// assert_eq!(l.macs(), 512 * 64 * 512);
/// assert_eq!(l.r * l.s, 512); // the reduction dim becomes the kernel
/// ```
pub fn gemm_to_conv(m: u64, n: u64, k_gemm: u64) -> ConvLayer {
    assert!(m > 0 && n > 0 && k_gemm > 0, "GEMM dims must be positive");
    let (r, s) = split_spatial(k_gemm);
    let (x, y) = split_spatial(n);
    ConvLayer::new(1, m, 1, r, s, x, y)
}

/// Lowers a fully-connected layer with `inputs` input features and
/// `outputs` output features for a batch of `batch` onto CONV.
///
/// ```
/// use spotlight_conv::fc_to_conv;
/// let l = fc_to_conv(1, 4096, 4096);
/// assert_eq!(l.macs(), 4096 * 4096);
/// ```
pub fn fc_to_conv(batch: u64, inputs: u64, outputs: u64) -> ConvLayer {
    assert!(
        batch > 0 && inputs > 0 && outputs > 0,
        "FC dims must be positive"
    );
    ConvLayer::new(batch, outputs, inputs, 1, 1, 1, 1)
}

/// Lowers a depth-wise separable convolution into its two constituent CONV
/// layers: a depth-wise stage (computed per-channel, represented as a CONV
/// with `K = C = channels` worth of work split into `channels` independent
/// single-channel CONVs, folded here into one layer with `C = 1` repeated
/// `channels` times via the batch dimension) followed by a 1x1 point-wise
/// stage.
///
/// The depth-wise stage is represented with `N = n * channels, K = 1, C = 1`
/// so that its MAC count is exact; this matches MAESTRO's treatment where
/// each channel's filter is an independent tiny CONV.
///
/// ```
/// use spotlight_conv::depthwise_separable_to_conv;
/// let (dw, pw) = depthwise_separable_to_conv(1, 32, 64, 3, 112, 112, 1);
/// assert_eq!(dw.macs(), 32 * 3 * 3 * 112 * 112);
/// assert_eq!(pw.macs(), 32 * 64 * 112 * 112);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn depthwise_separable_to_conv(
    n: u64,
    channels: u64,
    out_channels: u64,
    kernel: u64,
    x: u64,
    y: u64,
    stride: u64,
) -> (ConvLayer, ConvLayer) {
    assert!(
        n > 0 && channels > 0 && out_channels > 0 && kernel > 0 && x > 0 && y > 0,
        "depthwise dims must be positive"
    );
    let dw = ConvLayer::new(n * channels, 1, 1, kernel, kernel, x, y).with_stride(stride);
    let pw = ConvLayer::new(n, out_channels, channels, 1, 1, x, y);
    (dw, pw)
}

/// Splits a flat extent `n` into a near-square `(x, y)` pair with
/// `x * y == n`, preferring the most balanced factorization.
fn split_spatial(n: u64) -> (u64, u64) {
    let mut best = (1, n);
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = (d, n / d);
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_macs_preserved() {
        let l = gemm_to_conv(768, 512, 768);
        assert_eq!(l.macs(), 768 * 512 * 768);
    }

    #[test]
    fn gemm_square_n_splits_evenly() {
        let l = gemm_to_conv(8, 64, 9);
        assert_eq!((l.x, l.y), (8, 8));
        assert_eq!((l.r, l.s), (3, 3));
    }

    #[test]
    fn gemm_prime_n_degenerates() {
        // A prime column count cannot be reshaped into an image: the layer
        // shape is the long, skinny one the paper calls "uneven".
        let l = gemm_to_conv(8, 97, 8);
        assert_eq!((l.x, l.y), (1, 97));
    }

    #[test]
    fn gemm_reduction_becomes_large_kernel() {
        // ALBERT-like projection: the 768-deep reduction becomes a big,
        // uneven kernel plane.
        let l = gemm_to_conv(768, 512, 768);
        assert_eq!(l.c, 1);
        assert_eq!(l.r * l.s, 768);
        assert!(l.r >= 16 && l.s >= 16);
    }

    #[test]
    fn fc_is_pointwise_1x1x1() {
        let l = fc_to_conv(4, 1024, 1000);
        assert!(l.is_pointwise());
        assert_eq!((l.x, l.y), (1, 1));
        assert_eq!(l.macs(), 4 * 1024 * 1000);
    }

    #[test]
    fn depthwise_stage_macs_exact() {
        let (dw, pw) = depthwise_separable_to_conv(2, 96, 24, 3, 56, 56, 2);
        assert_eq!(dw.macs(), 2 * 96 * 9 * 56 * 56);
        assert_eq!(pw.macs(), 2 * 96 * 24 * 56 * 56);
        assert_eq!(dw.stride, 2);
        assert_eq!(pw.stride, 1);
    }

    proptest! {
        #[test]
        fn split_spatial_preserves_product(n in 1u64..100_000) {
            let (x, y) = split_spatial(n);
            prop_assert_eq!(x * y, n);
            prop_assert!(x <= y);
        }

        #[test]
        fn gemm_lowering_preserves_macs(
            m in 1u64..512, n in 1u64..512, k in 1u64..512,
        ) {
            prop_assert_eq!(gemm_to_conv(m, n, k).macs(), m * n * k);
        }
    }
}
