//! The analytical cost model.

use spotlight_accel::{AreaModel, EnergyTable, HardwareConfig};
use spotlight_conv::{ConvLayer, Dim, NUM_DIMS};
use spotlight_space::{Schedule, TileLevel};

use crate::error::MappingError;
use crate::report::CostReport;

/// Tunable model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Clock frequency in GHz (delay cycles -> time).
    pub clock_ghz: f64,
    /// Off-chip DRAM bandwidth in elements per cycle.
    pub dram_bandwidth: f64,
    /// Register-file accesses charged per MAC (weight + input + partial
    /// sum).
    pub rf_accesses_per_mac: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            clock_ghz: 1.0,
            dram_bandwidth: 32.0,
            rf_accesses_per_mac: 3.0,
        }
    }
}

/// The MAESTRO-like cost model: evaluates one (hardware, schedule, layer)
/// triple into a [`CostReport`].
///
/// See the crate-level documentation for the modeled phenomena, and
/// [`CostModel::evaluate`] for the estimation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    params: ModelParams,
    energy: EnergyTable,
    area: AreaModel,
}

impl CostModel {
    /// Builds a model from explicit parameter sets.
    pub fn new(params: ModelParams, energy: EnergyTable, area: AreaModel) -> Self {
        CostModel {
            params,
            energy,
            area,
        }
    }

    /// The energy table in use.
    pub fn energy_table(&self) -> &EnergyTable {
        &self.energy
    }

    /// The model parameters in use.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Estimates delay, energy, area and power of executing `layer` on
    /// `hw` under `sched`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError`] when the schedule's tiles do not fit the
    /// accelerator's buffers — the "invalid regions" of the co-design
    /// space.
    pub fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, MappingError> {
        let tiles = sched.tiles();

        // ---- Validity: buffer capacities -------------------------------
        let rf_need = tiles.footprint_bytes(TileLevel::RegisterFile, layer);
        let rf_avail = hw.rf_bytes_per_pe();
        if rf_need > rf_avail {
            return Err(MappingError::RfOverflow {
                needed: rf_need,
                available: rf_avail,
            });
        }

        // ---- Spatial mapping -------------------------------------------
        let rows = hw.pe_rows() as f64;
        let cols = hw.pe_width() as f64;
        let du0 = sched.outer_unroll();
        let du1 = sched.inner_unroll();
        let outer_unroll_trips = tiles.outer_trips(du0) as f64;
        let inner_unroll_trips = tiles.inner_trips(du1) as f64;
        let waves_o = (outer_unroll_trips / rows).ceil().max(1.0);
        let waves_i = (inner_unroll_trips / cols).ceil().max(1.0);
        let rows_used = outer_unroll_trips.min(rows);
        let cols_used = inner_unroll_trips.min(cols);

        // Scratchpad residency: spatially distributed tensors occupy one
        // L2-tile slice per active row; shared tensors are multicast from a
        // single slice. This couples scratchpad size with tile sizes and
        // unrolling — the co-design interaction Section VII-C credits for
        // Spotlight's wins.
        let (w1, i1, o1) = tiles.tensor_footprints(TileLevel::Scratchpad, layer);
        let slice = |indexed: bool, fp: u64| {
            if indexed {
                (rows_used as u64).max(1) * fp
            } else {
                fp
            }
        };
        let l2_need = slice(du0.indexes_weights(), w1)
            + slice(du0.indexes_inputs(), i1)
            + slice(du0.indexes_outputs(), o1);
        let l2_avail = hw.l2_bytes();
        if l2_need > l2_avail {
            return Err(MappingError::ScratchpadOverflow {
                needed: l2_need,
                available: l2_avail,
            });
        }

        // ---- Temporal iteration counts ---------------------------------
        let mut outer_t: [u64; NUM_DIMS] = tiles.outer_trip_array();
        outer_t[du0.index()] = waves_o as u64;
        let mut inner_t: [u64; NUM_DIMS] = tiles.inner_trip_array();
        inner_t[du1.index()] = waves_i as u64;
        let outer_iters: f64 = outer_t.iter().map(|&t| t as f64).product();
        let inner_iters: f64 = inner_t.iter().map(|&t| t as f64).product();

        // ---- Compute ----------------------------------------------------
        let simd = hw.simd_lanes() as f64;
        let rf_tile_macs = tiles.rf_tile_macs() as f64;
        let rf_tile_cycles = (rf_tile_macs / simd).ceil().max(1.0);
        let compute_cycles = outer_iters * inner_iters * rf_tile_cycles;
        let total_macs = layer.macs() as f64;
        let peak = hw.peak_macs_per_cycle() as f64;
        let pe_utilization = (total_macs / (compute_cycles * peak)).min(1.0);

        // ---- DRAM traffic (level 0 -> L2) -------------------------------
        let outer_order = sched.outer_order();
        let visits = |indexes: fn(Dim) -> bool| -> f64 {
            outer_iters / outer_order.temporal_reuse(&outer_t, indexes) as f64
        };
        let mult0 = |indexed: bool| if indexed { rows_used } else { 1.0 };

        let w_visits = visits(Dim::indexes_weights);
        let i_visits = visits(Dim::indexes_inputs);
        let o_visits = visits(Dim::indexes_outputs);
        let dram_w = w_visits * w1 as f64 * mult0(du0.indexes_weights());
        let dram_i = i_visits * i1 as f64 * mult0(du0.indexes_inputs());
        // Outputs: every distinct tile is written back once; each
        // *re-visit* (reduction loops placed outside the output loops
        // evicting and re-loading the tile) additionally costs a partial-
        // sum read and write.
        let o_tiles: f64 = outer_t
            .iter()
            .enumerate()
            .filter(|(i, _)| Dim::from_index(*i).indexes_outputs())
            .map(|(_, &t)| t as f64)
            .product();
        let dram_o = (2.0 * o_visits - o_tiles) * o1 as f64 * mult0(du0.indexes_outputs());
        let dram_bytes = dram_w + dram_i + dram_o;

        // ---- NoC / scratchpad traffic (L2 -> RF) -------------------------
        let (w2, i2, o2) = tiles.tensor_footprints(TileLevel::RegisterFile, layer);
        let inner_order = sched.inner_order();
        let inner_visits = |indexes: fn(Dim) -> bool| -> f64 {
            inner_iters / inner_order.temporal_reuse(&inner_t, indexes) as f64
        };
        let mult1 = |indexed_inner: bool| if indexed_inner { cols_used } else { 1.0 };

        let l2_w = outer_iters
            * inner_visits(Dim::indexes_weights)
            * w2 as f64
            * mult1(du1.indexes_weights())
            * mult0(du0.indexes_weights());
        let l2_i = outer_iters
            * inner_visits(Dim::indexes_inputs)
            * i2 as f64
            * mult1(du1.indexes_inputs())
            * mult0(du0.indexes_inputs());
        let o_inner_tiles: f64 = inner_t
            .iter()
            .enumerate()
            .filter(|(i, _)| Dim::from_index(*i).indexes_outputs())
            .map(|(_, &t)| t as f64)
            .product();
        let l2_o = outer_iters
            * (2.0 * inner_visits(Dim::indexes_outputs) - o_inner_tiles)
            * o2 as f64
            * mult1(du1.indexes_outputs())
            * mult0(du0.indexes_outputs());
        let noc_volume = l2_w + l2_i + l2_o;
        // Scratchpad port accesses: array-side traffic plus DRAM fills.
        let l2_bytes = noc_volume + dram_bytes;

        // ---- Delay -------------------------------------------------------
        let dram_cycles = dram_bytes / self.params.dram_bandwidth;
        let noc_cycles = noc_volume / hw.noc_bandwidth() as f64;
        // Pipeline fill: first tile must traverse the array before the
        // steady state; drains add the array half-perimeter.
        let ramp = rows + cols + rf_tile_cycles;
        let delay_cycles = compute_cycles.max(dram_cycles).max(noc_cycles) + ramp;

        // ---- Energy ------------------------------------------------------
        let rf_accesses = total_macs * self.params.rf_accesses_per_mac;
        let energy_mac_nj = total_macs * self.energy.mac_pj / 1000.0;
        let energy_rf_nj = rf_accesses * self.energy.rf_access_pj(hw) / 1000.0;
        let energy_l2_nj = l2_bytes * self.energy.l2_access_pj(hw) / 1000.0;
        let energy_dram_nj = dram_bytes * self.energy.dram_access_pj / 1000.0;
        let energy_noc_nj = noc_volume * self.energy.noc_delivery_pj(hw) / 1000.0;
        let delay_ns = delay_cycles / self.params.clock_ghz;
        let energy_leak_nj = self.energy.leakage_w(hw) * delay_ns;
        let energy_nj = energy_mac_nj
            + energy_rf_nj
            + energy_l2_nj
            + energy_dram_nj
            + energy_noc_nj
            + energy_leak_nj;

        let power_w = energy_nj / delay_ns;
        let area_mm2 = self.area.area_mm2(hw);

        Ok(CostReport {
            delay_cycles,
            energy_nj,
            area_mm2,
            power_w,
            pe_utilization,
            macs: total_macs,
            dram_bytes,
            dram_weight_bytes: dram_w,
            dram_input_bytes: dram_i,
            dram_output_bytes: dram_o,
            l2_bytes,
            rf_accesses,
            compute_cycles,
            dram_cycles,
            noc_cycles,
            energy_mac_nj,
            energy_rf_nj,
            energy_l2_nj,
            energy_dram_nj,
            energy_noc_nj,
            energy_leak_nj,
        })
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(
            ModelParams::default(),
            EnergyTable::default_8bit(),
            AreaModel::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spotlight_accel::Baseline;
    use spotlight_conv::LoopPermutation;
    use spotlight_space::dataflows::{dataflow_schedule, rigid_schedules};
    use spotlight_space::{sample, Schedule, TileSizes};

    fn model() -> CostModel {
        CostModel::default()
    }

    fn layer() -> ConvLayer {
        ConvLayer::new(1, 64, 32, 3, 3, 28, 28)
    }

    fn eyeriss() -> HardwareConfig {
        Baseline::EyerissLike.edge_config()
    }

    fn best_rigid(hw: &HardwareConfig, l: &ConvLayer) -> CostReport {
        rigid_schedules(l, hw)
            .into_iter()
            .filter_map(|(_, s)| model().evaluate(hw, &s, l).ok())
            .min_by(|a, b| a.edp().total_cmp(&b.edp()))
            .expect("at least one rigid schedule is feasible")
    }

    #[test]
    fn evaluation_is_deterministic() {
        let hw = eyeriss();
        let l = layer();
        let s = dataflow_schedule(Baseline::EyerissLike.dataflow(), &l, &hw);
        let a = model().evaluate(&hw, &s, &l).unwrap();
        let b = model().evaluate(&hw, &s, &l).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rf_overflow_detected() {
        let hw = eyeriss();
        let l = layer();
        // Whole layer in the RF: impossible on any edge design.
        let s = Schedule::trivial(&l).with_tiles(TileSizes::whole_layer(&l));
        assert!(matches!(
            model().evaluate(&hw, &s, &l),
            Err(MappingError::RfOverflow { .. })
        ));
    }

    #[test]
    fn utilization_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let hw = eyeriss();
        let l = layer();
        for _ in 0..200 {
            let s = sample::sample_schedule(&mut rng, &l);
            if let Ok(r) = model().evaluate(&hw, &s, &l) {
                assert!(r.pe_utilization > 0.0 && r.pe_utilization <= 1.0);
                assert!(r.delay_cycles.is_finite() && r.delay_cycles > 0.0);
                assert!(r.energy_nj.is_finite() && r.energy_nj > 0.0);
            }
        }
    }

    #[test]
    fn delay_at_least_every_roofline_term() {
        let hw = eyeriss();
        let l = layer();
        let s = dataflow_schedule(Baseline::EyerissLike.dataflow(), &l, &hw);
        let r = model().evaluate(&hw, &s, &l).unwrap();
        assert!(r.delay_cycles >= r.compute_cycles);
        assert!(r.delay_cycles >= r.dram_cycles);
        assert!(r.delay_cycles >= r.noc_cycles);
    }

    #[test]
    fn compute_cycles_lower_bounded_by_macs_over_peak() {
        let hw = eyeriss();
        let l = layer();
        let s = dataflow_schedule(Baseline::EyerissLike.dataflow(), &l, &hw);
        let r = model().evaluate(&hw, &s, &l).unwrap();
        let ideal = l.macs() as f64 / hw.peak_macs_per_cycle() as f64;
        assert!(r.compute_cycles >= ideal * 0.999);
    }

    #[test]
    fn dram_traffic_at_least_compulsory() {
        // Every tensor must cross the DRAM boundary at least once.
        let hw = eyeriss();
        let l = layer();
        let r = best_rigid(&hw, &l);
        let compulsory = (l.weight_elems() + l.output_elems()) as f64;
        assert!(
            r.dram_bytes >= compulsory,
            "{} < {compulsory}",
            r.dram_bytes
        );
    }

    #[test]
    fn more_pes_do_not_hurt_compute_bound_layers() {
        let l = ConvLayer::new(1, 256, 128, 3, 3, 28, 28);
        let small = HardwareConfig::new(128, 16, 2, 128, 256, 256).unwrap();
        let big = HardwareConfig::new(256, 16, 2, 128, 256, 256).unwrap();
        let rs = best_rigid(&small, &l);
        let rb = best_rigid(&big, &l);
        assert!(
            rb.delay_cycles <= rs.delay_cycles * 1.05,
            "big {} vs small {}",
            rb.delay_cycles,
            rs.delay_cycles
        );
    }

    #[test]
    fn loop_order_changes_dram_traffic() {
        // Weight-friendly outer order (weights' loops outermost, X/Y inner)
        // vs a weight-hostile one; weight DRAM traffic must differ.
        let hw = HardwareConfig::new(256, 16, 2, 256, 256, 128).unwrap();
        let l = ConvLayer::new(1, 64, 64, 3, 3, 56, 56);
        let tiles = TileSizes::new(&l, [1, 8, 8, 3, 3, 14, 14], [1, 2, 2, 1, 1, 2, 2]).unwrap();
        let friendly: LoopPermutation = "KCRSNXY".parse().unwrap();
        let hostile: LoopPermutation = "NXYKCRS".parse().unwrap();
        let base = Schedule::new(tiles, friendly, friendly, Dim::K, Dim::C);
        let bad = Schedule::new(tiles, hostile, friendly, Dim::K, Dim::C);
        let rf = model().evaluate(&hw, &base, &l).unwrap();
        let rb = model().evaluate(&hw, &bad, &l).unwrap();
        // The weight-friendly order must fetch weights less often; the
        // hostile order trades that for output reuse, so the *aggregate*
        // can go either way, but the per-tensor direction is fixed.
        assert!(
            rf.dram_weight_bytes < rb.dram_weight_bytes,
            "friendly {} !< hostile {}",
            rf.dram_weight_bytes,
            rb.dram_weight_bytes
        );
        assert_ne!(rf.dram_bytes, rb.dram_bytes, "order had no effect at all");
    }

    #[test]
    fn tuned_dataflow_beats_trivial_schedule() {
        let hw = eyeriss();
        let l = layer();
        let tuned = best_rigid(&hw, &l);
        let trivial = model().evaluate(&hw, &Schedule::trivial(&l), &l).unwrap();
        assert!(tuned.edp() < trivial.edp() / 2.0);
    }

    #[test]
    fn cloud_hw_outperforms_edge_on_big_layers() {
        let l = ConvLayer::new(1, 512, 256, 3, 3, 28, 28);
        let edge = best_rigid(&Baseline::EyerissLike.edge_config(), &l);
        let cloud = best_rigid(&Baseline::EyerissLike.cloud_config(), &l);
        assert!(cloud.delay_cycles < edge.delay_cycles);
    }

    #[test]
    fn energy_includes_all_components() {
        let hw = eyeriss();
        let l = layer();
        let r = best_rigid(&hw, &l);
        // MAC energy alone is a strict lower bound.
        let mac_nj = l.macs() as f64 * model().energy_table().mac_pj / 1000.0;
        assert!(r.energy_nj > mac_nj);
    }

    #[test]
    fn power_is_energy_over_time() {
        let hw = eyeriss();
        let l = layer();
        let r = best_rigid(&hw, &l);
        let t_ns = r.delay_cycles / model().params().clock_ghz;
        assert!((r.power_w - r.energy_nj / t_ns).abs() < 1e-9);
    }

    #[test]
    fn unrolling_small_dim_wastes_the_array() {
        let hw = HardwareConfig::new(256, 16, 1, 128, 256, 128).unwrap();
        let l = ConvLayer::new(1, 64, 64, 3, 3, 28, 28);
        let tiles = TileSizes::new(&l, [1, 4, 64, 3, 3, 28, 28], [1, 1, 1, 1, 1, 1, 1]).unwrap();
        let order = LoopPermutation::canonical();
        // R has only 3 iterations at the inner level (trips = 3 < 16 cols).
        let narrow = Schedule::new(tiles, order, order, Dim::K, Dim::R);
        // C has 64 inner iterations: fills the columns.
        let wide = Schedule::new(tiles, order, order, Dim::K, Dim::C);
        let rn = model().evaluate(&hw, &narrow, &l).unwrap();
        let rw = model().evaluate(&hw, &wide, &l).unwrap();
        assert!(rw.compute_cycles < rn.compute_cycles);
        assert!(rw.pe_utilization > rn.pe_utilization);
    }

    #[test]
    fn partial_wave_tail_costs_cycles() {
        // 17 unroll trips on 16 columns need 2 waves; 16 trips need 1.
        let hw = HardwareConfig::new(256, 16, 1, 256, 256, 128).unwrap();
        let mk = |k: u64| ConvLayer::new(1, k, 16, 3, 3, 16, 16);
        let eval = |k: u64| {
            let l = mk(k);
            let tiles =
                TileSizes::new(&l, [1, k, 16, 3, 3, 16, 16], [1, 1, 4, 3, 3, 1, 1]).unwrap();
            let order = LoopPermutation::canonical();
            let s = Schedule::new(tiles, order, order, Dim::X, Dim::K);
            model().evaluate(&hw, &s, &l).unwrap()
        };
        let full = eval(16);
        let ragged = eval(17);
        // 17/16 more MACs but ~2x the waves: utilization must drop.
        assert!(ragged.pe_utilization < full.pe_utilization * 0.7);
    }

    #[test]
    fn invalid_fraction_of_random_space_is_substantial() {
        // Section IV-B: large parts of the space are invalid. Random
        // schedules on a small-RF design should frequently overflow.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let hw = HardwareConfig::new(256, 16, 2, 64, 64, 64).unwrap();
        let l = ConvLayer::new(1, 128, 64, 3, 3, 56, 56);
        let mut invalid = 0;
        let n = 300;
        for _ in 0..n {
            let s = sample::sample_schedule(&mut rng, &l);
            if model().evaluate(&hw, &s, &l).is_err() {
                invalid += 1;
            }
        }
        assert!(
            invalid > n / 10,
            "only {invalid}/{n} random schedules were invalid"
        );
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::Objective;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spotlight_space::sample;

    fn arb_seed() -> impl Strategy<Value = u64> {
        0u64..5_000
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// More NoC bandwidth never increases delay (all else equal).
        #[test]
        fn more_bandwidth_never_hurts(seed in arb_seed()) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
            let s = sample::sample_schedule(&mut rng, &layer);
            let model = CostModel::default();
            let slow = HardwareConfig::new(256, 16, 2, 128, 256, 64).unwrap();
            let fast = HardwareConfig::new(256, 16, 2, 128, 256, 256).unwrap();
            if let (Ok(a), Ok(b)) = (model.evaluate(&slow, &s, &layer), model.evaluate(&fast, &s, &layer)) {
                prop_assert!(b.delay_cycles <= a.delay_cycles + 1e-9);
            }
        }

        /// More SIMD lanes never increase compute cycles.
        #[test]
        fn more_simd_never_slows_compute(seed in arb_seed()) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
            let s = sample::sample_schedule(&mut rng, &layer);
            let model = CostModel::default();
            let narrow = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
            let wide = HardwareConfig::new(256, 16, 8, 128, 256, 128).unwrap();
            if let (Ok(a), Ok(b)) = (model.evaluate(&narrow, &s, &layer), model.evaluate(&wide, &s, &layer)) {
                prop_assert!(b.compute_cycles <= a.compute_cycles + 1e-9);
            }
        }

        /// A bigger scratchpad never *invalidates* a feasible schedule
        /// and never changes its traffic (capacity is a constraint, not a
        /// behavior knob).
        #[test]
        fn bigger_scratchpad_preserves_feasibility(seed in arb_seed()) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
            let s = sample::sample_schedule(&mut rng, &layer);
            let model = CostModel::default();
            let small = HardwareConfig::new(256, 16, 2, 128, 128, 128).unwrap();
            let big = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
            if let Ok(a) = model.evaluate(&small, &s, &layer) {
                let b = model.evaluate(&big, &s, &layer);
                prop_assert!(b.is_ok());
                let b = b.unwrap();
                prop_assert!((a.dram_bytes - b.dram_bytes).abs() < 1e-9);
            }
        }

        /// EDP equals delay x energy for every feasible report.
        #[test]
        fn edp_identity(seed in arb_seed()) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let layer = ConvLayer::new(1, 32, 16, 3, 3, 14, 14);
            let ranges = spotlight_space::ParamRanges::edge();
            let hw = sample::sample_hw(&mut rng, &ranges);
            let s = sample::sample_schedule(&mut rng, &layer);
            if let Ok(r) = CostModel::default().evaluate(&hw, &s, &layer) {
                prop_assert!((r.edp() - r.delay_cycles * r.energy_nj).abs() <= 1e-9 * r.edp());
                prop_assert_eq!(r.objective(Objective::Delay), r.delay_cycles);
            }
        }
    }
}
