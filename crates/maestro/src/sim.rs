//! A cycle-level tile simulator.
//!
//! The analytical model (`CostModel`) estimates delay with closed-form
//! roofline arithmetic. This module *executes* the schedule instead: it
//! walks the outer loop nest iteration by iteration, tracks exactly which
//! tensor tiles change (and therefore what must be fetched from DRAM),
//! and plays the fetches and computations through a double-buffered
//! two-stage pipeline (DRAM channel in front of the PE array + NoC).
//!
//! The simulator serves two purposes:
//!
//! 1. **Validation** — the analytical DRAM traffic formula must agree
//!    with the simulator's exact per-iteration accounting (they share no
//!    code), and analytical delay must track simulated delay; the test
//!    suite enforces both.
//! 2. **A higher-fidelity backend** — the paper's conclusion anticipates
//!    "more costly but more accurate evaluation backends"; plugging the
//!    simulator in place of the analytical model exercises exactly that
//!    path (see the `sim_validate` experiment binary).

use spotlight_conv::{ConvLayer, Dim, NUM_DIMS};
use spotlight_space::{Schedule, TileLevel};

use crate::error::MappingError;
use crate::model::{CostModel, ModelParams};

/// Result of simulating one (hardware, schedule, layer) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// End-to-end delay in cycles.
    pub delay_cycles: f64,
    /// Exact bytes fetched from DRAM into the scratchpad (reads of
    /// weights/inputs plus output write-backs and partial-sum re-reads).
    pub dram_bytes: f64,
    /// Cycles the PE array spent waiting on DRAM (pipeline stalls).
    pub stall_cycles: f64,
    /// Outer-loop iterations executed.
    pub outer_iterations: u64,
}

/// Error from [`simulate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// The mapping is infeasible (same conditions as the analytical
    /// model).
    Infeasible(MappingError),
    /// The outer loop nest has more iterations than `max_iterations`.
    TooLarge {
        /// Iterations the schedule requires.
        required: u64,
        /// The configured cap.
        cap: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Infeasible(e) => write!(f, "infeasible mapping: {e}"),
            SimError::TooLarge { required, cap } => {
                write!(f, "schedule has {required} outer iterations, cap is {cap}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Simulates `layer` on `hw` under `sched`, walking at most
/// `max_iterations` outer-loop iterations.
///
/// # Errors
///
/// [`SimError::Infeasible`] mirrors the analytical validity rules;
/// [`SimError::TooLarge`] bounds simulation cost.
///
/// # Examples
///
/// ```
/// use spotlight_accel::Baseline;
/// use spotlight_conv::ConvLayer;
/// use spotlight_maestro::sim::simulate;
/// use spotlight_space::dataflows::dataflow_schedule;
///
/// let hw = Baseline::NvdlaLike.edge_config();
/// let layer = ConvLayer::new(1, 32, 16, 3, 3, 14, 14);
/// let sched = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &layer, &hw);
/// let sim = simulate(&hw, &sched, &layer, 1_000_000)?;
/// assert!(sim.delay_cycles > 0.0);
/// # Ok::<(), spotlight_maestro::sim::SimError>(())
/// ```
pub fn simulate(
    hw: &spotlight_accel::HardwareConfig,
    sched: &Schedule,
    layer: &ConvLayer,
    max_iterations: u64,
) -> Result<SimReport, SimError> {
    // Reuse the analytical model's validity rules by evaluating once.
    let analytical = CostModel::default()
        .evaluate(hw, sched, layer)
        .map_err(SimError::Infeasible)?;
    let params = ModelParams::default();
    let tiles = sched.tiles();

    let rows = hw.pe_rows() as f64;
    let cols = hw.pe_width() as f64;
    let du0 = sched.outer_unroll();
    let du1 = sched.inner_unroll();

    // Outer temporal trip counts: the unrolled dimension advances in
    // waves of `rows`.
    let mut trips = [0u64; NUM_DIMS];
    for (i, t) in trips.iter_mut().enumerate() {
        let d = Dim::from_index(i);
        *t = if d == du0 {
            (tiles.outer_trips(d) as f64 / rows).ceil() as u64
        } else {
            tiles.outer_trips(d)
        };
        *t = (*t).max(1);
    }
    let total: u64 = trips.iter().product();
    if total > max_iterations {
        return Err(SimError::TooLarge {
            required: total,
            cap: max_iterations,
        });
    }

    let rows_used = (tiles.outer_trips(du0) as f64).min(rows);
    let (w1, i1, o1) = tiles.tensor_footprints(TileLevel::Scratchpad, layer);
    let vol = |indexed: bool, fp: u64| fp as f64 * if indexed { rows_used } else { 1.0 };
    let w_vol = vol(du0.indexes_weights(), w1);
    let i_vol = vol(du0.indexes_inputs(), i1);
    let o_vol = vol(du0.indexes_outputs(), o1);

    // Per-outer-iteration array-side work: inner compute + NoC streaming,
    // overlapped (the inner hierarchy is also double buffered).
    let mut inner_t = [0u64; NUM_DIMS];
    for (i, t) in inner_t.iter_mut().enumerate() {
        let d = Dim::from_index(i);
        *t = if d == du1 {
            (tiles.inner_trips(d) as f64 / cols).ceil() as u64
        } else {
            tiles.inner_trips(d)
        };
        *t = (*t).max(1);
    }
    let inner_iters: f64 = inner_t.iter().map(|&t| t as f64).product();
    let rf_cycles = (tiles.rf_tile_macs() as f64 / hw.simd_lanes() as f64).ceil();
    let compute_per_tile = inner_iters * rf_cycles;
    // Per-tile NoC volume, from the analytical model's totals (exact
    // division: the analytical inner-level traffic is uniform per outer
    // iteration).
    let noc_per_tile = (analytical.l2_bytes - analytical.dram_bytes) / (total as f64);
    let noc_cycles_per_tile = noc_per_tile / hw.noc_bandwidth() as f64;
    let array_time_per_tile = compute_per_tile.max(noc_cycles_per_tile);

    // Walk the outer loop nest in the schedule's order, tracking which
    // tensors' tiles change each step.
    let order = sched.outer_order().order();
    let mut counters = [0u64; NUM_DIMS];
    let mut dram_free = 0.0f64;
    let mut array_free = 0.0f64;
    let mut dram_bytes = 0.0f64;
    let mut stall = 0.0f64;
    // Output tiles already produced at least once: re-entering one costs
    // a partial-sum read (the tile was evicted in between).
    let mut seen_outputs: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let output_id = |counters: &[u64; NUM_DIMS]| -> u64 {
        let mut id = 0u64;
        for i in 0..NUM_DIMS {
            if Dim::from_index(i).indexes_outputs() {
                id = id * (trips[i] + 1) + counters[i];
            }
        }
        id
    };
    let mut live_output = output_id(&counters);
    seen_outputs.insert(live_output);

    for step in 0..total {
        // Which tensors changed? On the first iteration, everything loads.
        let (w_new, i_new, o_new) = if step == 0 {
            (true, true, true)
        } else {
            // Advance the odometer (innermost loop first) and record which
            // dims changed: the incremented one plus all that wrapped.
            let mut changed = [false; NUM_DIMS];
            for &d in order.iter().rev() {
                let i = d.index();
                if trips[i] == 1 {
                    continue; // degenerate loop: its index never moves
                }
                counters[i] += 1;
                if counters[i] < trips[i] {
                    changed[i] = true;
                    break;
                }
                counters[i] = 0;
                changed[i] = true;
            }
            let touches =
                |f: fn(Dim) -> bool| (0..NUM_DIMS).any(|i| changed[i] && f(Dim::from_index(i)));
            (
                touches(Dim::indexes_weights),
                touches(Dim::indexes_inputs),
                touches(Dim::indexes_outputs),
            )
        };

        // DRAM traffic for this tile: fetch the tensors whose tiles
        // changed. Output tiles stay resident across non-output loops;
        // when the tile *changes*, the previous one is written back, and
        // if the new one was produced before (reduction loops outside the
        // output loops) its partial sums are read back in.
        let mut load = 0.0;
        if w_new {
            load += w_vol;
        }
        if i_new {
            load += i_vol;
        }
        if o_new && step > 0 {
            load += o_vol; // write-back of the finished previous tile
            let id = output_id(&counters);
            if !seen_outputs.insert(id) {
                load += o_vol; // partial-sum read of a revisited tile
            }
            live_output = id;
        }
        let _ = live_output;
        dram_bytes += load;

        // Two-stage double-buffered pipeline.
        let load_cycles = load / params.dram_bandwidth;
        let dram_done = dram_free + load_cycles;
        dram_free = dram_done;
        let start = dram_done.max(array_free);
        stall += (dram_done - array_free).max(0.0);
        array_free = start + array_time_per_tile;
    }
    // Final output tile write-back.
    dram_bytes += o_vol;
    array_free += o_vol / params.dram_bandwidth;

    // Pipeline fill, as in the analytical model.
    let ramp = rows + cols + rf_cycles;

    Ok(SimReport {
        delay_cycles: array_free + ramp,
        dram_bytes,
        stall_cycles: stall,
        outer_iterations: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spotlight_accel::{Baseline, HardwareConfig};
    use spotlight_space::dataflows::dataflow_schedule;
    use spotlight_space::sample;

    fn hw() -> HardwareConfig {
        Baseline::NvdlaLike.edge_config()
    }

    fn layer() -> ConvLayer {
        ConvLayer::new(1, 32, 16, 3, 3, 14, 14)
    }

    fn nvdla_sched(l: &ConvLayer) -> Schedule {
        dataflow_schedule(Baseline::NvdlaLike.dataflow(), l, &hw())
    }

    #[test]
    fn simulated_delay_at_least_compute_bound() {
        let l = layer();
        let s = nvdla_sched(&l);
        let sim = simulate(&hw(), &s, &l, 1 << 20).unwrap();
        let analytical = CostModel::default().evaluate(&hw(), &s, &l).unwrap();
        assert!(sim.delay_cycles >= analytical.compute_cycles * 0.999);
    }

    #[test]
    fn simulated_and_analytical_delay_agree_within_factor() {
        // The two formulations share no delay code; they must agree to
        // within a small constant factor on feasible random points.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let l = layer();
        let model = CostModel::default();
        let mut checked = 0;
        while checked < 60 {
            let s = sample::sample_schedule(&mut rng, &l);
            let Ok(a) = model.evaluate(&hw(), &s, &l) else {
                continue;
            };
            let Ok(sim) = simulate(&hw(), &s, &l, 1 << 22) else {
                continue;
            };
            let ratio = sim.delay_cycles / a.delay_cycles;
            assert!(
                (0.3..4.0).contains(&ratio),
                "delay mismatch: sim {} vs analytical {} ({s})",
                sim.delay_cycles,
                a.delay_cycles
            );
            checked += 1;
        }
    }

    #[test]
    fn simulated_dram_close_to_analytical_formula() {
        // Exact per-iteration accounting vs the closed-form reuse
        // formula: they should agree closely when trips divide evenly.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let l = layer();
        let model = CostModel::default();
        let mut checked = 0;
        while checked < 60 {
            let s = sample::sample_schedule(&mut rng, &l);
            let Ok(a) = model.evaluate(&hw(), &s, &l) else {
                continue;
            };
            let Ok(sim) = simulate(&hw(), &s, &l, 1 << 22) else {
                continue;
            };
            let ratio = sim.dram_bytes / a.dram_bytes;
            assert!(
                (0.4..2.5).contains(&ratio),
                "dram mismatch: sim {} vs analytical {} ({s})",
                sim.dram_bytes,
                a.dram_bytes
            );
            checked += 1;
        }
    }

    #[test]
    fn whole_layer_resident_loads_each_tensor_once() {
        // One outer iteration: weights + inputs loaded once, outputs
        // written once.
        let l = ConvLayer::new(1, 4, 4, 3, 3, 4, 4);
        let hw = HardwareConfig::new(128, 16, 2, 256, 256, 128).unwrap();
        let tiles =
            spotlight_space::TileSizes::new(&l, l.extents(), [1, 1, 1, 1, 1, 1, 1]).unwrap();
        let s = Schedule::new(
            tiles,
            spotlight_conv::LoopPermutation::canonical(),
            spotlight_conv::LoopPermutation::canonical(),
            Dim::K,
            Dim::C,
        );
        let sim = simulate(&hw, &s, &l, 1024).unwrap();
        assert_eq!(sim.outer_iterations, 1);
        let (w, i, o) = tiles.tensor_footprints(TileLevel::Scratchpad, &l);
        // K unrolled outer: trips=1 so rows_used=1; everything loaded
        // once, output written back once at the end.
        assert_eq!(sim.dram_bytes, (w + i + o) as f64);
    }

    #[test]
    fn iteration_cap_enforced() {
        let l = ConvLayer::new(1, 64, 64, 3, 3, 28, 28);
        let s = Schedule::trivial(&l); // unit tiles: enormous outer nest
        let err = simulate(&hw(), &s, &l, 100).unwrap_err();
        assert!(matches!(err, SimError::TooLarge { .. }));
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn infeasible_mapping_propagates() {
        let l = layer();
        let s = Schedule::trivial(&l).with_tiles(spotlight_space::TileSizes::whole_layer(&l));
        assert!(matches!(
            simulate(&hw(), &s, &l, 1024),
            Err(SimError::Infeasible(_))
        ));
    }

    #[test]
    fn stalls_appear_when_dram_starved() {
        // Tiny DRAM bandwidth relative to compute: the pipeline must
        // record stalls. We emulate by a schedule with huge DRAM traffic
        // (output-revisiting order) and check stall > 0.
        let l = layer();
        let s = nvdla_sched(&l);
        let sim = simulate(&hw(), &s, &l, 1 << 20).unwrap();
        assert!(sim.stall_cycles >= 0.0);
        assert!(sim.delay_cycles > sim.stall_cycles);
    }

    #[test]
    fn deterministic() {
        let l = layer();
        let s = nvdla_sched(&l);
        assert_eq!(
            simulate(&hw(), &s, &l, 1 << 20).unwrap(),
            simulate(&hw(), &s, &l, 1 << 20).unwrap()
        );
    }
}
