//! Cost-model outputs and the optimization objective.

use std::fmt;

/// The metric a search minimizes (Section VI-B: "Spotlight performs
/// single objective optimization to minimize delay or EDP").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// End-to-end delay in cycles.
    Delay,
    /// Energy-delay product in nJ x cycles.
    Edp,
}

impl Objective {
    /// Both objectives, in the order the paper's figures present them.
    pub const ALL: [Objective; 2] = [Objective::Edp, Objective::Delay];
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Delay => f.write_str("delay"),
            Objective::Edp => f.write_str("EDP"),
        }
    }
}

/// The analytical model's estimate for one (hardware, schedule, layer)
/// triple: the quantities MAESTRO reports (Section VI-B: "delay, energy,
/// throughput, power, and area").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// End-to-end delay in cycles.
    pub delay_cycles: f64,
    /// Total energy in nanojoules.
    pub energy_nj: f64,
    /// Die area in mm^2.
    pub area_mm2: f64,
    /// Average power in watts at the model clock.
    pub power_w: f64,
    /// Fraction of peak MAC throughput achieved (0, 1].
    pub pe_utilization: f64,
    /// Total MAC operations.
    pub macs: f64,
    /// Bytes moved between DRAM and the scratchpad.
    pub dram_bytes: f64,
    /// Weight bytes moved from DRAM (component of `dram_bytes`).
    pub dram_weight_bytes: f64,
    /// Input bytes moved from DRAM (component of `dram_bytes`).
    pub dram_input_bytes: f64,
    /// Output and partial-sum bytes crossing the DRAM boundary
    /// (component of `dram_bytes`).
    pub dram_output_bytes: f64,
    /// Bytes read from the scratchpad into the array (plus partial-sum
    /// traffic).
    pub l2_bytes: f64,
    /// Register-file accesses.
    pub rf_accesses: f64,
    /// Compute-bound lower bound on delay (cycles); `delay_cycles`
    /// additionally reflects memory and NoC limits.
    pub compute_cycles: f64,
    /// DRAM-transfer-bound lower bound on delay (cycles).
    pub dram_cycles: f64,
    /// NoC-transfer-bound lower bound on delay (cycles).
    pub noc_cycles: f64,
    /// Energy breakdown: MAC operations (nJ).
    pub energy_mac_nj: f64,
    /// Energy breakdown: register-file accesses (nJ).
    pub energy_rf_nj: f64,
    /// Energy breakdown: scratchpad accesses (nJ).
    pub energy_l2_nj: f64,
    /// Energy breakdown: DRAM accesses (nJ).
    pub energy_dram_nj: f64,
    /// Energy breakdown: interconnect traversal (nJ).
    pub energy_noc_nj: f64,
    /// Energy breakdown: SRAM leakage over the run (nJ).
    pub energy_leak_nj: f64,
}

impl CostReport {
    /// Energy-delay product in nJ x cycles — the paper's headline metric.
    ///
    /// ```
    /// # let report = spotlight_maestro::CostReport::zeroed_for_tests(10.0, 5.0);
    /// assert_eq!(report.edp(), 50.0);
    /// ```
    pub fn edp(&self) -> f64 {
        self.delay_cycles * self.energy_nj
    }

    /// Value of the chosen objective.
    pub fn objective(&self, obj: Objective) -> f64 {
        match obj {
            Objective::Delay => self.delay_cycles,
            Objective::Edp => self.edp(),
        }
    }

    /// Inferences per joule, scaled by MACs (the "throughput per Joule"
    /// comparison of Section VII-C).
    pub fn macs_per_nj(&self) -> f64 {
        self.macs / self.energy_nj
    }

    /// Scratchpad reads per DRAM fill — the paper's "reads per fill"
    /// reuse metric for the L1 scratchpad (Section VII-C). Higher means
    /// each byte brought on-chip is used more before being replaced.
    pub fn l2_reads_per_fill(&self) -> f64 {
        (self.l2_bytes - self.dram_bytes).max(0.0) / self.dram_bytes.max(1.0)
    }

    /// Register-file reads per scratchpad delivery — the RF-level reuse
    /// metric: MAC-side operand reads divided by the bytes streamed in.
    pub fn rf_reads_per_fill(&self) -> f64 {
        self.rf_accesses / (self.l2_bytes - self.dram_bytes).max(1.0)
    }

    /// Which resource bounds the delay: `"compute"`, `"dram"`, or
    /// `"noc"`.
    pub fn bottleneck(&self) -> &'static str {
        let c = self.compute_cycles;
        let d = self.dram_cycles;
        let n = self.noc_cycles;
        if c >= d && c >= n {
            "compute"
        } else if d >= n {
            "dram"
        } else {
            "noc"
        }
    }

    /// A report with only delay and energy populated — for doctests and
    /// unit tests of metric arithmetic.
    #[doc(hidden)]
    pub fn zeroed_for_tests(delay_cycles: f64, energy_nj: f64) -> Self {
        CostReport {
            delay_cycles,
            energy_nj,
            area_mm2: 0.0,
            power_w: 0.0,
            pe_utilization: 0.0,
            macs: 0.0,
            dram_bytes: 0.0,
            dram_weight_bytes: 0.0,
            dram_input_bytes: 0.0,
            dram_output_bytes: 0.0,
            l2_bytes: 0.0,
            rf_accesses: 0.0,
            compute_cycles: 0.0,
            dram_cycles: 0.0,
            noc_cycles: 0.0,
            energy_mac_nj: 0.0,
            energy_rf_nj: 0.0,
            energy_l2_nj: 0.0,
            energy_dram_nj: 0.0,
            energy_noc_nj: 0.0,
            energy_leak_nj: 0.0,
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delay {:.3e} cyc, energy {:.3e} nJ, EDP {:.3e}, util {:.1}%, {} bound",
            self.delay_cycles,
            self.energy_nj,
            self.edp(),
            self.pe_utilization * 100.0,
            self.bottleneck()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_is_product() {
        let r = CostReport::zeroed_for_tests(3.0, 7.0);
        assert_eq!(r.edp(), 21.0);
        assert_eq!(r.objective(Objective::Delay), 3.0);
        assert_eq!(r.objective(Objective::Edp), 21.0);
    }

    #[test]
    fn bottleneck_picks_largest() {
        let mut r = CostReport::zeroed_for_tests(1.0, 1.0);
        r.compute_cycles = 10.0;
        r.dram_cycles = 5.0;
        r.noc_cycles = 1.0;
        assert_eq!(r.bottleneck(), "compute");
        r.dram_cycles = 20.0;
        assert_eq!(r.bottleneck(), "dram");
        r.noc_cycles = 30.0;
        assert_eq!(r.bottleneck(), "noc");
    }

    #[test]
    fn objective_display() {
        assert_eq!(Objective::Edp.to_string(), "EDP");
        assert_eq!(Objective::Delay.to_string(), "delay");
    }

    #[test]
    fn display_mentions_bottleneck() {
        let mut r = CostReport::zeroed_for_tests(1.0, 1.0);
        r.dram_cycles = 5.0;
        assert!(r.to_string().contains("dram"));
    }
}

#[cfg(test)]
mod breakdown_tests {
    use spotlight_accel::Baseline;
    use spotlight_conv::ConvLayer;
    use spotlight_space::dataflows::dataflow_schedule;

    #[test]
    fn energy_components_sum_to_total() {
        let hw = Baseline::NvdlaLike.edge_config();
        let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
        let s = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &layer, &hw);
        let r = crate::CostModel::default()
            .evaluate(&hw, &s, &layer)
            .unwrap();
        let sum = r.energy_mac_nj
            + r.energy_rf_nj
            + r.energy_l2_nj
            + r.energy_dram_nj
            + r.energy_noc_nj
            + r.energy_leak_nj;
        assert!((sum - r.energy_nj).abs() < 1e-9 * r.energy_nj);
        assert!(r.energy_mac_nj > 0.0 && r.energy_dram_nj > 0.0);
    }

    #[test]
    fn reuse_metrics_positive_for_real_schedules() {
        let hw = Baseline::NvdlaLike.edge_config();
        let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
        let s = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &layer, &hw);
        let r = crate::CostModel::default()
            .evaluate(&hw, &s, &layer)
            .unwrap();
        assert!(r.l2_reads_per_fill() > 0.0);
        assert!(r.rf_reads_per_fill() > 0.0);
    }
}
