//! Infeasible-mapping errors.

use std::fmt;

/// Why a (hardware, schedule) pair cannot execute a layer.
///
/// Large, unpredictable parts of the co-design space are invalid
/// (Section IV-B); the cost model surfaces the reason so searches can be
/// analyzed, and the search frameworks convert these into penalty costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingError {
    /// The register-file tile does not fit in one PE's register file.
    RfOverflow {
        /// Bytes the RF tile needs.
        needed: u64,
        /// Bytes available per PE.
        available: u64,
    },
    /// The scratchpad-resident working set (including per-row slices of
    /// spatially distributed tensors) exceeds the scratchpad.
    ScratchpadOverflow {
        /// Bytes the L2 working set needs.
        needed: u64,
        /// Scratchpad capacity in bytes.
        available: u64,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::RfOverflow { needed, available } => write!(
                f,
                "register-file tile needs {needed} B but each PE has {available} B"
            ),
            MappingError::ScratchpadOverflow { needed, available } => write!(
                f,
                "scratchpad working set needs {needed} B but capacity is {available} B"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_sizes() {
        let e = MappingError::RfOverflow {
            needed: 100,
            available: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("64"));
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(MappingError::ScratchpadOverflow {
            needed: 1,
            available: 0,
        });
        assert!(e.to_string().contains("scratchpad"));
    }
}
