#![warn(missing_docs)]

//! A MAESTRO-like data-centric analytical cost model for spatial DNN
//! accelerators.
//!
//! Spotlight evaluates every candidate co-design point with the MAESTRO
//! analytical model (Section VI-B). This crate is a from-scratch
//! reimplementation of the phenomena that matter to the search:
//!
//! - **spatial unrolling** of one dimension per tiling level across the
//!   2-D PE array, with partial-wave (tail) under-utilization,
//! - **multi-level tiling** with per-tensor buffer residency, including
//!   the interaction between spatial unrolling and scratchpad capacity
//!   (unrolled tensors occupy one slice per active row),
//! - **temporal reuse** derived from the per-level loop orders: tensors
//!   whose loops are innermost-invariant are not refetched,
//! - **multicast** on the Figure 2 interconnect: data not indexed by the
//!   unrolled dimension is fetched once and broadcast,
//! - **partial-sum traffic** for output tiles revisited by reduction
//!   loops,
//! - a roofline-style **delay** model: `max(compute, DRAM, NoC)` with a
//!   pipeline-fill ramp, and an **energy** model charging every MAC, RF,
//!   scratchpad, DRAM and NoC event from [`spotlight_accel::EnergyTable`].
//!
//! The model reports delay (cycles), energy (nJ), area (mm^2) and power
//! (W) — the quantities the paper's figures plot — via [`CostReport`].
//!
//! # Examples
//!
//! ```
//! use spotlight_accel::Baseline;
//! use spotlight_conv::ConvLayer;
//! use spotlight_maestro::CostModel;
//! use spotlight_space::dataflows::dataflow_schedule;
//!
//! let model = CostModel::default();
//! let hw = Baseline::EyerissLike.edge_config();
//! let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
//! let sched = dataflow_schedule(Baseline::EyerissLike.dataflow(), &layer, &hw);
//! let report = model.evaluate(&hw, &sched, &layer)?;
//! assert!(report.delay_cycles > 0.0);
//! assert!(report.pe_utilization <= 1.0);
//! # Ok::<(), spotlight_maestro::MappingError>(())
//! ```

pub mod error;
pub mod model;
pub mod report;
pub mod sim;

pub use error::MappingError;
pub use model::{CostModel, ModelParams};
pub use report::{CostReport, Objective};
