//! Deterministic fault injection for robustness testing.
//!
//! [`FaultInjectingBackend`] decorates any [`CostBackend`] and injects
//! four failure modes — worker panics, transient errors, latency spikes,
//! and NaN-poisoned reports — from a seeded, replayable schedule. The
//! decision for every backend call is a pure function of
//! `(plan seed, key fingerprint, per-key attempt ordinal)`, so the fault
//! schedule is identical at any thread count and across process
//! restarts: the property the resume machinery and the determinism tests
//! lean on.
//!
//! The schedule is intentionally *not* a function of wall time or call
//! order across keys. Two runs that evaluate the same set of triples see
//! the same faults on the same triples even if the interleaving differs.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use spotlight_accel::HardwareConfig;
use spotlight_conv::ConvLayer;
use spotlight_maestro::CostReport;
use spotlight_space::Schedule;

use crate::{CostBackend, EvalError};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a, used as a *stable* `Hasher` for key fingerprints. The std
/// `DefaultHasher` is explicitly unstable across releases; fingerprints
/// feed the fault schedule and the quarantine list, both of which must
/// reproduce bit-for-bit, so we pin the hash function here.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Stable 64-bit fingerprint of an evaluation triple. Shared by the
/// fault schedule and the engine's quarantine list.
pub fn key_fingerprint(hw: &HardwareConfig, sched: &Schedule, layer: &ConvLayer) -> u64 {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    hw.hash(&mut h);
    sched.hash(&mut h);
    layer.hash(&mut h);
    h.finish()
}

/// Error parsing a `--faults` specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault plan: {} (expected e.g. \"seed=7,transient=0.05,poison=0.01,panic=0.002,latency=0.01,latency_ms=1\")",
            self.message
        )
    }
}

impl std::error::Error for FaultPlanError {}

/// A seeded fault-injection schedule. Parsed from the CLI `--faults`
/// flag; the canonical `Display` form round-trips through [`FromStr`]
/// and is what the run manifest records so `resume` can rebuild the
/// identical schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault schedule (independent of the search seed).
    pub seed: u64,
    /// Probability a backend call fails with [`EvalError::Transient`].
    pub transient: f64,
    /// Probability a successful report comes back NaN-poisoned.
    pub poison: f64,
    /// Probability a backend call panics.
    pub panic: f64,
    /// Probability a backend call sleeps for `latency_ms` first.
    pub latency: f64,
    /// Duration of an injected latency spike, in milliseconds.
    pub latency_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            transient: 0.0,
            poison: 0.0,
            panic: 0.0,
            latency: 0.0,
            latency_ms: 1,
        }
    }
}

/// What the schedule injects for one backend call. The fields are
/// checked in declaration order: a panic preempts everything, a
/// transient preempts latency and poison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// The call panics.
    pub panic: bool,
    /// The call returns [`EvalError::Transient`].
    pub transient: bool,
    /// The call sleeps for the plan's latency spike first.
    pub latency: bool,
    /// A successful report is NaN-poisoned.
    pub poison: bool,
}

const SALT_PANIC: u64 = 0x0070_616e_6963; // "panic"
const SALT_TRANSIENT: u64 = 0x0074_7261_6e73; // "trans"
const SALT_LATENCY: u64 = 0x6c61_7465_6e63; // "latenc"
const SALT_POISON: u64 = 0x706f_6973_6f6e; // "poison"

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when every fault probability is zero.
    pub fn is_noop(&self) -> bool {
        self.transient == 0.0 && self.poison == 0.0 && self.panic == 0.0 && self.latency == 0.0
    }

    fn check(&self) -> Result<(), FaultPlanError> {
        for (name, p) in [
            ("transient", self.transient),
            ("poison", self.poison),
            ("panic", self.panic),
            ("latency", self.latency),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultPlanError {
                    message: format!("{name} must be a probability in [0, 1], got {p}"),
                });
            }
        }
        Ok(())
    }

    /// A uniform draw in `[0, 1)` that depends only on the plan seed,
    /// the fault kind, the key fingerprint, and the attempt ordinal.
    fn roll(&self, salt: u64, key: u64, attempt: u64) -> f64 {
        let bits = mix64(self.seed ^ mix64(salt ^ key) ^ mix64(attempt));
        // Top 53 bits → exactly representable uniform double in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The (pure, replayable) fault decision for the `attempt`-th call
    /// on the triple fingerprinted by `key`. Exposed so determinism
    /// tests can predict the schedule without running a backend.
    pub fn decide(&self, key: u64, attempt: u64) -> FaultDecision {
        FaultDecision {
            panic: self.roll(SALT_PANIC, key, attempt) < self.panic,
            transient: self.roll(SALT_TRANSIENT, key, attempt) < self.transient,
            latency: self.roll(SALT_LATENCY, key, attempt) < self.latency,
            poison: self.roll(SALT_POISON, key, attempt) < self.poison,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},transient={},poison={},panic={},latency={},latency_ms={}",
            self.seed, self.transient, self.poison, self.panic, self.latency, self.latency_ms
        )
    }
}

impl FromStr for FaultPlan {
    type Err = FaultPlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| FaultPlanError {
                message: format!("expected key=value, got {part:?}"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |message: String| FaultPlanError { message };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(format!("seed must be a u64, got {value:?}")))?
                }
                "transient" => {
                    plan.transient = value
                        .parse()
                        .map_err(|_| bad(format!("transient must be a float, got {value:?}")))?
                }
                "poison" => {
                    plan.poison = value
                        .parse()
                        .map_err(|_| bad(format!("poison must be a float, got {value:?}")))?
                }
                "panic" => {
                    plan.panic = value
                        .parse()
                        .map_err(|_| bad(format!("panic must be a float, got {value:?}")))?
                }
                "latency" => {
                    plan.latency = value
                        .parse()
                        .map_err(|_| bad(format!("latency must be a float, got {value:?}")))?
                }
                "latency_ms" => {
                    plan.latency_ms = value
                        .parse()
                        .map_err(|_| bad(format!("latency_ms must be a u64, got {value:?}")))?
                }
                other => {
                    return Err(FaultPlanError {
                        message: format!("unknown field {other:?}"),
                    })
                }
            }
        }
        plan.check()?;
        Ok(plan)
    }
}

/// Decorates a [`CostBackend`] with the seeded fault schedule of a
/// [`FaultPlan`]. Reports the inner backend's `name()` (so summaries
/// and manifests keep the real backend) and surfaces the plan through
/// [`CostBackend::faults`] for the manifest.
pub struct FaultInjectingBackend {
    inner: Box<dyn CostBackend>,
    plan: FaultPlan,
    /// Per-key call ordinals. Calls for one key are sequential in
    /// practice (the engine retries inline and quarantines before any
    /// re-query), which keeps the ordinal — and hence the schedule —
    /// thread-invariant.
    attempts: Mutex<HashMap<u64, u64>>,
}

impl FaultInjectingBackend {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: Box<dyn CostBackend>, plan: FaultPlan) -> Self {
        FaultInjectingBackend {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The active schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn next_attempt(&self, key: u64) -> u64 {
        let mut attempts = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = attempts.entry(key).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    }
}

impl CostBackend for FaultInjectingBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn faults(&self) -> Option<String> {
        Some(self.plan.to_string())
    }

    fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        let key = key_fingerprint(hw, sched, layer);
        let attempt = self.next_attempt(key);
        let decision = self.plan.decide(key, attempt);
        if decision.panic {
            panic!("injected fault: panic on key {key:016x} attempt {attempt}");
        }
        if decision.transient {
            return Err(EvalError::Transient);
        }
        if decision.latency {
            std::thread::sleep(Duration::from_millis(self.plan.latency_ms));
        }
        let report = self.inner.evaluate(hw, sched, layer)?;
        if decision.poison {
            return Ok(CostReport {
                delay_cycles: f64::NAN,
                ..report
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaestroBackend;
    use spotlight_accel::DataflowStyle;
    use spotlight_space::dataflows::dataflow_schedule;

    fn triple() -> (HardwareConfig, Schedule, ConvLayer) {
        let hw = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
        let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
        let sched = dataflow_schedule(DataflowStyle::WeightStationary, &layer, &hw);
        (hw, sched, layer)
    }

    #[test]
    fn plan_round_trips_through_display() {
        let spec = "seed=7,transient=0.05,poison=0.01,panic=0.002,latency=0.01,latency_ms=2";
        let plan: FaultPlan = spec.parse().unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.latency_ms, 2);
        let reparsed: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn plan_rejects_bad_specs() {
        assert!("transient=1.5".parse::<FaultPlan>().is_err());
        assert!("bogus=1".parse::<FaultPlan>().is_err());
        assert!("seed".parse::<FaultPlan>().is_err());
        assert!("seed=abc".parse::<FaultPlan>().is_err());
        // Empty spec is the no-op plan.
        let plan: FaultPlan = "".parse().unwrap();
        assert!(plan.is_noop());
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a: FaultPlan = "seed=1,transient=0.3,poison=0.3,panic=0.3,latency=0.3"
            .parse()
            .unwrap();
        let b: FaultPlan = "seed=2,transient=0.3,poison=0.3,panic=0.3,latency=0.3"
            .parse()
            .unwrap();
        let mut diverged = false;
        for key in 0..64u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(a.decide(key, 0), a.decide(key, 0));
            if a.decide(key, 0) != b.decide(key, 0) {
                diverged = true;
            }
        }
        assert!(diverged, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn transient_then_clean_retry_follows_schedule() {
        // With transient=1 every call errors; with transient=0 none do.
        let (hw, sched, layer) = triple();
        let always = FaultInjectingBackend::new(
            Box::new(MaestroBackend::default()),
            "seed=3,transient=1".parse().unwrap(),
        );
        assert_eq!(
            always.evaluate(&hw, &sched, &layer),
            Err(EvalError::Transient)
        );
        let never = FaultInjectingBackend::new(
            Box::new(MaestroBackend::default()),
            "seed=3".parse().unwrap(),
        );
        assert!(never.evaluate(&hw, &sched, &layer).is_ok());
        assert_eq!(
            never.faults().as_deref(),
            Some("seed=3,transient=0,poison=0,panic=0,latency=0,latency_ms=1")
        );
        assert_eq!(never.name(), "maestro");
    }

    #[test]
    fn poison_yields_nan_delay() {
        let (hw, sched, layer) = triple();
        let backend = FaultInjectingBackend::new(
            Box::new(MaestroBackend::default()),
            "seed=3,poison=1".parse().unwrap(),
        );
        let report = backend.evaluate(&hw, &sched, &layer).unwrap();
        assert!(report.delay_cycles.is_nan());
        assert!(report.energy_nj.is_finite());
    }

    #[test]
    #[should_panic(expected = "injected fault: panic")]
    fn panic_probability_one_panics() {
        let (hw, sched, layer) = triple();
        let backend = FaultInjectingBackend::new(
            Box::new(MaestroBackend::default()),
            "seed=3,panic=1".parse().unwrap(),
        );
        let _ = backend.evaluate(&hw, &sched, &layer);
    }

    #[test]
    fn key_fingerprint_is_stable_and_discriminating() {
        let (hw, sched, layer) = triple();
        let a = key_fingerprint(&hw, &sched, &layer);
        let b = key_fingerprint(&hw, &sched, &layer);
        assert_eq!(a, b);
        let other = ConvLayer::new(1, 64, 32, 3, 3, 14, 14);
        assert_ne!(a, key_fingerprint(&hw, &sched, &other));
    }
}
