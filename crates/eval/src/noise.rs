//! Deterministic measurement noise for robustness testing.
//!
//! [`NoisyBackend`] decorates any [`CostBackend`] and perturbs the
//! delay/energy of every successful report with seeded multiplicative
//! noise. Like the fault injector, every draw is a pure function of
//! `(plan seed, key fingerprint, per-key attempt ordinal)`, so a noise
//! schedule is identical at any thread count and across process
//! restarts — replicated measurements of one point differ (each call
//! advances the key's ordinal) but the *sequence* of measurements a
//! point sees is replayable.
//!
//! Two noise models ship: `gauss` (Gaussian relative error, the
//! well-behaved case) and `heavy` (Cauchy-tailed relative error, the
//! pathological case where occasional samples are wildly wrong and
//! only robust aggregation survives).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Mutex, PoisonError};

use spotlight_accel::HardwareConfig;
use spotlight_conv::ConvLayer;
use spotlight_maestro::CostReport;
use spotlight_space::Schedule;

use crate::fault::{key_fingerprint, mix64};
use crate::{CostBackend, EvalError};

/// Error parsing a `--noise` specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoisePlanError {
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl fmt::Display for NoisePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid noise plan: {} (expected e.g. \"seed=7,model=gauss,sigma=0.1\")",
            self.message
        )
    }
}

impl std::error::Error for NoisePlanError {}

/// Shape of the relative measurement error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoiseModel {
    /// Standard-normal relative error: `value * (1 + sigma * z)`.
    #[default]
    Gauss,
    /// Standard-Cauchy relative error — no finite variance, so a small
    /// fraction of measurements land arbitrarily far from the truth.
    Heavy,
}

impl NoiseModel {
    fn as_str(&self) -> &'static str {
        match self {
            NoiseModel::Gauss => "gauss",
            NoiseModel::Heavy => "heavy",
        }
    }
}

/// A seeded measurement-noise schedule. Parsed from the CLI `--noise`
/// flag; the canonical `Display` form round-trips through [`FromStr`]
/// and is what the run manifest records so `resume` can rebuild the
/// identical schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePlan {
    /// Seed of the noise schedule (independent of the search seed).
    pub seed: u64,
    /// Shape of the relative error.
    pub model: NoiseModel,
    /// Scale of the relative error; `0` disables the noise.
    pub sigma: f64,
}

impl Default for NoisePlan {
    fn default() -> Self {
        NoisePlan {
            seed: 0,
            model: NoiseModel::Gauss,
            sigma: 0.0,
        }
    }
}

const SALT_DELAY: u64 = 0x6e64_656c_6179; // "ndelay"
const SALT_ENERGY: u64 = 0x6e65_6e65_7267; // "nenerg"

/// Smallest multiplicative factor the schedule will apply: keeps noisy
/// reports strictly positive so they stay valid cost reports rather
/// than turning into poison.
const FACTOR_FLOOR: f64 = 1e-3;

impl NoisePlan {
    /// A plan that perturbs nothing (`sigma = 0`).
    pub fn none() -> Self {
        NoisePlan::default()
    }

    /// True when the plan leaves every report untouched.
    pub fn is_noop(&self) -> bool {
        self.sigma == 0.0
    }

    fn check(&self) -> Result<(), NoisePlanError> {
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(NoisePlanError {
                message: format!(
                    "sigma must be a finite non-negative float, got {}",
                    self.sigma
                ),
            });
        }
        Ok(())
    }

    /// A uniform draw in `[0, 1)` that depends only on the plan seed,
    /// the salt, the key fingerprint, and the attempt ordinal.
    fn roll(&self, salt: u64, key: u64, attempt: u64) -> f64 {
        let bits = mix64(self.seed ^ mix64(salt ^ key) ^ mix64(attempt));
        // Top 53 bits → exactly representable uniform double in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The relative-error variate `z` for one metric of one call.
    /// Gaussian via Box–Muller, Cauchy via the inverse CDF — both pure
    /// functions of the schedule, no RNG state anywhere.
    fn variate(&self, salt: u64, key: u64, attempt: u64) -> f64 {
        // Two decorrelated uniforms from one logical draw: re-salt the
        // second with the mixed salt so the pair never collides with
        // another metric's draw.
        let u1 = self.roll(salt, key, attempt);
        let u2 = self.roll(mix64(salt), key, attempt);
        match self.model {
            NoiseModel::Gauss => {
                // Box–Muller; guard u1 = 0 (ln(0) = -inf).
                let r = (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt();
                r * (2.0 * std::f64::consts::PI * u2).cos()
            }
            NoiseModel::Heavy => (std::f64::consts::PI * (u1 - 0.5)).tan(),
        }
    }

    /// The (pure, replayable) multiplicative factor for one metric of
    /// the `attempt`-th call on the triple fingerprinted by `key`.
    /// Exposed so determinism tests can predict the schedule without
    /// running a backend.
    pub fn factor(&self, salt: u64, key: u64, attempt: u64) -> f64 {
        if self.is_noop() {
            return 1.0;
        }
        (1.0 + self.sigma * self.variate(salt, key, attempt)).max(FACTOR_FLOOR)
    }

    /// Applies the schedule to one successful report.
    fn perturb(&self, report: CostReport, key: u64, attempt: u64) -> CostReport {
        if self.is_noop() {
            return report;
        }
        CostReport {
            delay_cycles: report.delay_cycles * self.factor(SALT_DELAY, key, attempt),
            energy_nj: report.energy_nj * self.factor(SALT_ENERGY, key, attempt),
            ..report
        }
    }
}

impl fmt::Display for NoisePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},model={},sigma={}",
            self.seed,
            self.model.as_str(),
            self.sigma
        )
    }
}

impl FromStr for NoisePlan {
    type Err = NoisePlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = NoisePlan::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| NoisePlanError {
                message: format!("expected key=value, got {part:?}"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |message: String| NoisePlanError { message };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(format!("seed must be a u64, got {value:?}")))?
                }
                "model" => {
                    plan.model = match value {
                        "gauss" => NoiseModel::Gauss,
                        "heavy" => NoiseModel::Heavy,
                        other => {
                            return Err(bad(format!("model must be gauss or heavy, got {other:?}")))
                        }
                    }
                }
                "sigma" => {
                    plan.sigma = value
                        .parse()
                        .map_err(|_| bad(format!("sigma must be a float, got {value:?}")))?
                }
                other => {
                    return Err(NoisePlanError {
                        message: format!("unknown field {other:?}"),
                    })
                }
            }
        }
        plan.check()?;
        Ok(plan)
    }
}

/// Decorates a [`CostBackend`] with the seeded noise schedule of a
/// [`NoisePlan`]. Reports the inner backend's `name()` and `faults()`
/// (noise typically wraps a fault injector) and surfaces its own plan
/// through [`CostBackend::noise`] for the manifest.
pub struct NoisyBackend {
    inner: Box<dyn CostBackend>,
    plan: NoisePlan,
    /// Per-key call ordinals. Calls for one key are sequential in
    /// practice (the engine replicates inline), which keeps the ordinal
    /// — and hence the schedule — thread-invariant.
    attempts: Mutex<HashMap<u64, u64>>,
}

impl NoisyBackend {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: Box<dyn CostBackend>, plan: NoisePlan) -> Self {
        NoisyBackend {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The active schedule.
    pub fn plan(&self) -> &NoisePlan {
        &self.plan
    }

    fn next_attempt(&self, key: u64) -> u64 {
        let mut attempts = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = attempts.entry(key).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    }
}

impl CostBackend for NoisyBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn faults(&self) -> Option<String> {
        self.inner.faults()
    }

    fn noise(&self) -> Option<String> {
        Some(self.plan.to_string())
    }

    fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        let report = self.inner.evaluate(hw, sched, layer)?;
        let key = key_fingerprint(hw, sched, layer);
        let attempt = self.next_attempt(key);
        Ok(self.plan.perturb(report, key, attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaestroBackend;
    use spotlight_accel::DataflowStyle;
    use spotlight_space::dataflows::dataflow_schedule;

    fn triple() -> (HardwareConfig, Schedule, ConvLayer) {
        let hw = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
        let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
        let sched = dataflow_schedule(DataflowStyle::WeightStationary, &layer, &hw);
        (hw, sched, layer)
    }

    #[test]
    fn plan_round_trips_through_display() {
        let spec = "seed=7,model=gauss,sigma=0.1";
        let plan: NoisePlan = spec.parse().unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.model, NoiseModel::Gauss);
        assert_eq!(plan.sigma, 0.1);
        let reparsed: NoisePlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, reparsed);
        let heavy: NoisePlan = "seed=1,model=heavy,sigma=0.05".parse().unwrap();
        assert_eq!(heavy.to_string().parse::<NoisePlan>().unwrap(), heavy);
    }

    #[test]
    fn plan_rejects_bad_specs() {
        assert!("sigma=-0.1".parse::<NoisePlan>().is_err());
        assert!("sigma=nan".parse::<NoisePlan>().is_err());
        assert!("model=cauchy".parse::<NoisePlan>().is_err());
        assert!("bogus=1".parse::<NoisePlan>().is_err());
        assert!("seed".parse::<NoisePlan>().is_err());
        assert!("seed=abc".parse::<NoisePlan>().is_err());
        // Empty spec is the no-op plan.
        let plan: NoisePlan = "".parse().unwrap();
        assert!(plan.is_noop());
    }

    #[test]
    fn factors_are_pure_and_seed_dependent() {
        let a: NoisePlan = "seed=1,model=gauss,sigma=0.2".parse().unwrap();
        let b: NoisePlan = "seed=2,model=gauss,sigma=0.2".parse().unwrap();
        let mut diverged = false;
        for key in 0..64u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let f = a.factor(SALT_DELAY, key, 0);
            assert_eq!(f.to_bits(), a.factor(SALT_DELAY, key, 0).to_bits());
            assert!(f >= FACTOR_FLOOR && f.is_finite());
            if f != b.factor(SALT_DELAY, key, 0) {
                diverged = true;
            }
        }
        assert!(diverged, "seeds 1 and 2 produced identical factors");
    }

    #[test]
    fn replicates_of_one_key_differ_but_replay_identically() {
        let (hw, sched, layer) = triple();
        let noisy = |seed: u64| {
            NoisyBackend::new(
                Box::new(MaestroBackend::default()),
                format!("seed={seed},model=gauss,sigma=0.1")
                    .parse()
                    .unwrap(),
            )
        };
        let a = noisy(7);
        let r0 = a.evaluate(&hw, &sched, &layer).unwrap();
        let r1 = a.evaluate(&hw, &sched, &layer).unwrap();
        assert_ne!(r0.delay_cycles.to_bits(), r1.delay_cycles.to_bits());
        // A fresh backend with the same plan replays the same sequence.
        let b = noisy(7);
        let s0 = b.evaluate(&hw, &sched, &layer).unwrap();
        let s1 = b.evaluate(&hw, &sched, &layer).unwrap();
        assert_eq!(r0.delay_cycles.to_bits(), s0.delay_cycles.to_bits());
        assert_eq!(r1.delay_cycles.to_bits(), s1.delay_cycles.to_bits());
        assert_eq!(b.noise().as_deref(), Some("seed=7,model=gauss,sigma=0.1"));
        assert_eq!(b.name(), "maestro");
        assert_eq!(b.faults(), None);
    }

    #[test]
    fn gauss_noise_averages_out() {
        // The empirical mean relative error over many keys must be
        // close to zero and the spread close to sigma.
        let plan: NoisePlan = "seed=11,model=gauss,sigma=0.1".parse().unwrap();
        let n = 4096;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for key in 0..n {
            let f = plan.factor(SALT_DELAY, mix64(key), 0) - 1.0;
            sum += f;
            sum_sq += f * f;
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.01, "mean relative error {mean}");
        assert!((std - 0.1).abs() < 0.01, "relative error spread {std}");
    }

    #[test]
    fn heavy_noise_produces_gross_outliers() {
        let plan: NoisePlan = "seed=11,model=heavy,sigma=0.05".parse().unwrap();
        let gross = (0..4096u64)
            .filter(|&key| (plan.factor(SALT_DELAY, mix64(key), 0) - 1.0).abs() > 1.0)
            .count();
        // A Cauchy with scale 0.05 puts ~3% of its mass beyond +-20
        // scales; Gaussian noise would put essentially none there.
        assert!(gross > 20, "only {gross} gross outliers in 4096 draws");
    }

    #[test]
    fn noop_plan_is_exactly_transparent() {
        let (hw, sched, layer) = triple();
        let clean = MaestroBackend::default()
            .evaluate(&hw, &sched, &layer)
            .unwrap();
        let noisy = NoisyBackend::new(Box::new(MaestroBackend::default()), NoisePlan::none());
        let report = noisy.evaluate(&hw, &sched, &layer).unwrap();
        assert_eq!(report.delay_cycles.to_bits(), clean.delay_cycles.to_bits());
        assert_eq!(report.energy_nj.to_bits(), clean.energy_nj.to_bits());
    }
}
