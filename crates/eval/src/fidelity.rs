//! Multi-fidelity evaluation policy (Polaris direction).
//!
//! A [`FidelitySpec`] describes a successive-halving ladder of
//! evaluation fidelities: most candidates are measured cheaply on a low
//! rung, and only the ones whose cheap cost ranks in the top
//! `1/eta`-fraction of their rung's history are promoted toward the
//! full-fidelity rung. Three cheapening modes ship:
//!
//! * [`FidelityMode::Proxy`] — evaluate a reduced layer subset exactly
//!   and extrapolate the full cost by MAC-weight. The per-triple
//!   backend calls are exact, so they are tagged [`Fidelity::Full`] and
//!   their results are reusable when the candidate is promoted.
//! * [`FidelityMode::Replicate`] — measure with a reduced replicate
//!   count. Cheap reports are noisier; they are tagged
//!   [`Fidelity::Rung`] so they never alias with full-fidelity cache
//!   entries, and their dispersion is inflated by the rung's calibrated
//!   variance before it reaches the heteroscedastic surrogate.
//! * [`FidelityMode::Backend`] — dispatch cheap rungs to a coarser cost
//!   backend entirely (e.g. `timeloop` as a proxy for `maestro`).
//!   Tagged and inflated like `Replicate`.
//!
//! Every quantity here is a pure function of the spec, so promotion
//! ladders are identical at any thread count and across resumes.

use std::fmt;
use std::str::FromStr;

use crate::BACKEND_NAMES;

/// The fidelity a single evaluation was (or is to be) performed at.
///
/// `Rung(r)` is a cheap rung of the ladder; `Full` is the exact,
/// full-cost measurement every search ultimately trusts. The derived
/// ordering puts every cheap rung below `Full`. The engine keys its
/// memo cache by this tag, so a cheap report can never be served for a
/// full-fidelity request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fidelity {
    /// Cheap rung `r` of a [`FidelitySpec`] ladder (0 = cheapest).
    Rung(u8),
    /// The exact full-fidelity measurement.
    Full,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fidelity::Rung(r) => write!(f, "rung{r}"),
            Fidelity::Full => write!(f, "full"),
        }
    }
}

/// How cheap rungs are made cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityMode {
    /// Reduced-layer-set proxy: exact evaluation of a subset of layers,
    /// extrapolated by MAC weight.
    Proxy,
    /// Low-replicate noisy measurement.
    Replicate,
    /// Coarser cost backend for cheap rungs.
    Backend,
}

impl FidelityMode {
    fn as_str(&self) -> &'static str {
        match self {
            FidelityMode::Proxy => "proxy",
            FidelityMode::Replicate => "replicate",
            FidelityMode::Backend => "backend",
        }
    }
}

/// Error parsing or validating a `--fidelity` specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FidelitySpecError {
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl fmt::Display for FidelitySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fidelity spec: {} (expected e.g. \"fidelity=proxy:0.25,rungs=3,eta=2,calib=1\")",
            self.message
        )
    }
}

impl std::error::Error for FidelitySpecError {}

/// A successive-halving fidelity ladder. Parsed from the CLI
/// `--fidelity` flag; the canonical `Display` form round-trips through
/// [`FromStr`] and is what the run manifest records so `resume` rejects
/// a mismatched ladder instead of silently diverging.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelitySpec {
    /// How cheap rungs are made cheap.
    pub mode: FidelityMode,
    /// Cost fraction of the cheapest rung relative to full fidelity,
    /// in `(0, 1)`. Intermediate rungs interpolate geometrically.
    pub fraction: f64,
    /// The coarse backend cheap rungs dispatch to in
    /// [`FidelityMode::Backend`]; unused otherwise.
    pub cheap_backend: String,
    /// Number of rungs in the ladder, the full-fidelity rung included.
    pub rungs: u8,
    /// Promotion divisor: the top `ceil(n / eta)` of a rung's history
    /// is promoted, successive-halving style.
    pub eta: u8,
    /// Calibration factor for the variance inflation cheap observations
    /// carry into the surrogate; 0 trusts cheap rungs fully.
    pub calib: f64,
}

impl Default for FidelitySpec {
    fn default() -> Self {
        FidelitySpec {
            mode: FidelityMode::Proxy,
            fraction: 0.25,
            cheap_backend: String::new(),
            rungs: 3,
            eta: 2,
            calib: 1.0,
        }
    }
}

impl FidelitySpec {
    fn check(&self) -> Result<(), FidelitySpecError> {
        let bad = |message: String| FidelitySpecError { message };
        if !(self.fraction > 0.0 && self.fraction < 1.0) {
            return Err(bad(format!(
                "fraction must be in (0, 1), got {}",
                self.fraction
            )));
        }
        if !(2..=8).contains(&self.rungs) {
            return Err(bad(format!("rungs must be in 2..=8, got {}", self.rungs)));
        }
        if self.eta < 2 {
            return Err(bad(format!("eta must be at least 2, got {}", self.eta)));
        }
        if !(self.calib >= 0.0 && self.calib.is_finite()) {
            return Err(bad(format!(
                "calib must be a finite non-negative float, got {}",
                self.calib
            )));
        }
        if self.mode == FidelityMode::Backend {
            if self.rungs != 2 {
                return Err(bad(format!(
                    "backend mode supports exactly 2 rungs (cheap backend, then full), got {}",
                    self.rungs
                )));
            }
            if !BACKEND_NAMES.contains(&self.cheap_backend.as_str()) {
                return Err(bad(format!(
                    "unknown cheap backend {:?} (valid backends: {})",
                    self.cheap_backend,
                    BACKEND_NAMES.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// The index of the full-fidelity rung (the last one).
    pub fn full_rung(&self) -> u8 {
        self.rungs - 1
    }

    /// Cost fraction of rung `r` relative to full fidelity: the
    /// geometric ladder `fraction^((rungs-1-r)/(rungs-1))`, which is
    /// `fraction` at rung 0 and exactly 1 at the full rung.
    pub fn fraction_at(&self, rung: u8) -> f64 {
        let rung = rung.min(self.full_rung());
        let steps = f64::from(self.full_rung());
        self.fraction
            .powf(f64::from(self.full_rung() - rung) / steps)
    }

    /// Variance inflation a rung-`r` observation carries into the
    /// surrogate, on top of its measured dispersion: zero at the full
    /// rung, `calib * (1/fraction_at - 1)` below it, so cheaper rungs
    /// are trusted proportionally less.
    pub fn variance_inflation(&self, rung: u8) -> f64 {
        if rung >= self.full_rung() {
            0.0
        } else {
            self.calib * (1.0 / self.fraction_at(rung) - 1.0)
        }
    }

    /// Replicate count at rung `r` given the full-fidelity count `k`
    /// ([`FidelityMode::Replicate`]); never below 1.
    pub fn replicates_at(&self, rung: u8, k: usize) -> usize {
        ((k as f64 * self.fraction_at(rung)).round() as usize).max(1)
    }

    /// How many of `n` candidates a rung promotes: `ceil(n / eta)`.
    pub fn promote_quota(&self, n: usize) -> usize {
        n.div_ceil(self.eta as usize)
    }

    /// The cache/observation tag for an evaluation at rung `r`. Proxy
    /// rungs evaluate their layer subset *exactly*, so they tag
    /// [`Fidelity::Full`] and their per-triple results are reusable on
    /// promotion; replicate/backend rungs produce genuinely different
    /// (noisier / coarser) numbers and tag [`Fidelity::Rung`].
    pub fn fidelity_for(&self, rung: u8) -> Fidelity {
        match self.mode {
            FidelityMode::Proxy => Fidelity::Full,
            FidelityMode::Replicate | FidelityMode::Backend => {
                if rung >= self.full_rung() {
                    Fidelity::Full
                } else {
                    Fidelity::Rung(rung)
                }
            }
        }
    }
}

impl fmt::Display for FidelitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mode {
            FidelityMode::Backend => write!(f, "fidelity=backend:{}", self.cheap_backend)?,
            mode => write!(f, "fidelity={}:{}", mode.as_str(), self.fraction)?,
        }
        write!(
            f,
            ",rungs={},eta={},calib={}",
            self.rungs, self.eta, self.calib
        )
    }
}

impl FromStr for FidelitySpec {
    type Err = FidelitySpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = FidelitySpec::default();
        let mut saw_mode = false;
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| FidelitySpecError {
                message: format!("expected key=value, got {part:?}"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |message: String| FidelitySpecError { message };
            match key {
                "fidelity" => {
                    saw_mode = true;
                    let (mode, param) = match value.split_once(':') {
                        Some((m, p)) => (m.trim(), Some(p.trim())),
                        None => (value, None),
                    };
                    match mode {
                        "proxy" => spec.mode = FidelityMode::Proxy,
                        "replicate" => spec.mode = FidelityMode::Replicate,
                        "backend" => {
                            spec.mode = FidelityMode::Backend;
                            // Backend mode has one cheap rung at a
                            // nominal half cost; the real ratio depends
                            // on the backends and only shapes the
                            // variance inflation.
                            spec.fraction = 0.5;
                            spec.rungs = 2;
                        }
                        other => {
                            return Err(bad(format!(
                                "unknown fidelity mode {other:?} (proxy|replicate|backend)"
                            )))
                        }
                    }
                    match (spec.mode, param) {
                        (FidelityMode::Backend, Some(name)) => {
                            spec.cheap_backend = name.to_string();
                        }
                        (FidelityMode::Backend, None) => {
                            return Err(bad(
                                "backend mode needs a backend name, e.g. backend:timeloop".into(),
                            ))
                        }
                        (_, Some(frac)) => {
                            spec.fraction = frac.parse().map_err(|_| {
                                bad(format!("fraction must be a float, got {frac:?}"))
                            })?;
                        }
                        (_, None) => {}
                    }
                }
                "rungs" => {
                    spec.rungs = value
                        .parse()
                        .map_err(|_| bad(format!("rungs must be a small integer, got {value:?}")))?
                }
                "eta" => {
                    spec.eta = value
                        .parse()
                        .map_err(|_| bad(format!("eta must be a small integer, got {value:?}")))?
                }
                "calib" => {
                    spec.calib = value
                        .parse()
                        .map_err(|_| bad(format!("calib must be a float, got {value:?}")))?
                }
                other => {
                    return Err(FidelitySpecError {
                        message: format!("unknown field {other:?}"),
                    })
                }
            }
        }
        if !saw_mode {
            return Err(FidelitySpecError {
                message:
                    "spec names no fidelity mode (fidelity=proxy:0.25|replicate:0.5|backend:<name>)"
                        .into(),
            });
        }
        spec.check()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_display() {
        for spec in [
            "fidelity=proxy:0.25,rungs=3,eta=2,calib=1",
            "fidelity=replicate:0.2,rungs=4,eta=3,calib=0.5",
            "fidelity=backend:timeloop,rungs=2,eta=2,calib=1",
        ] {
            let parsed: FidelitySpec = spec.parse().unwrap();
            assert_eq!(parsed.to_string(), spec);
            let reparsed: FidelitySpec = parsed.to_string().parse().unwrap();
            assert_eq!(parsed, reparsed);
        }
    }

    #[test]
    fn defaults_fill_unnamed_fields() {
        let spec: FidelitySpec = "fidelity=proxy".parse().unwrap();
        assert_eq!(spec.mode, FidelityMode::Proxy);
        assert_eq!(spec.fraction, 0.25);
        assert_eq!(spec.rungs, 3);
        assert_eq!(spec.eta, 2);
        assert_eq!(spec.calib, 1.0);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for (spec, needle) in [
            ("", "names no fidelity mode"),
            ("rungs=3", "names no fidelity mode"),
            ("fidelity=magic", "unknown fidelity mode"),
            ("fidelity=proxy:1.5", "fraction"),
            ("fidelity=proxy:0", "fraction"),
            ("fidelity=proxy,rungs=1", "rungs"),
            ("fidelity=proxy,rungs=99", "rungs"),
            ("fidelity=proxy,eta=1", "eta"),
            ("fidelity=proxy,calib=-1", "calib"),
            ("fidelity=backend", "backend name"),
            ("fidelity=backend:verilator", "verilator"),
            ("fidelity=backend:sim,rungs=3", "2 rungs"),
            ("fidelity=proxy,bogus=1", "bogus"),
            ("fidelity", "key=value"),
        ] {
            let err = spec.parse::<FidelitySpec>().unwrap_err();
            assert!(err.to_string().contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn ladder_is_geometric_and_ends_at_full() {
        let spec: FidelitySpec = "fidelity=replicate:0.25,rungs=3".parse().unwrap();
        assert_eq!(spec.fraction_at(0), 0.25);
        assert!((spec.fraction_at(1) - 0.5).abs() < 1e-12);
        assert_eq!(spec.fraction_at(2), 1.0);
        assert_eq!(spec.full_rung(), 2);
        // Inflation shrinks to zero as rungs approach full fidelity.
        assert!(spec.variance_inflation(0) > spec.variance_inflation(1));
        assert_eq!(spec.variance_inflation(2), 0.0);
        assert!((spec.variance_inflation(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn replicates_scale_with_the_rung_and_never_vanish() {
        let spec: FidelitySpec = "fidelity=replicate:0.2,rungs=3".parse().unwrap();
        assert_eq!(spec.replicates_at(0, 5), 1);
        assert_eq!(spec.replicates_at(1, 5), 2);
        assert_eq!(spec.replicates_at(2, 5), 5);
        assert_eq!(spec.replicates_at(0, 1), 1);
    }

    #[test]
    fn promotion_quota_is_ceil_n_over_eta() {
        let spec: FidelitySpec = "fidelity=proxy,eta=2".parse().unwrap();
        assert_eq!(spec.promote_quota(1), 1);
        assert_eq!(spec.promote_quota(4), 2);
        assert_eq!(spec.promote_quota(5), 3);
        let spec: FidelitySpec = "fidelity=proxy,eta=3".parse().unwrap();
        assert_eq!(spec.promote_quota(9), 3);
    }

    #[test]
    fn cache_tags_separate_cheap_from_full() {
        // Proxy rungs evaluate exactly: everything tags Full.
        let proxy: FidelitySpec = "fidelity=proxy".parse().unwrap();
        assert_eq!(proxy.fidelity_for(0), Fidelity::Full);
        assert_eq!(proxy.fidelity_for(2), Fidelity::Full);
        // Replicate/backend cheap rungs must never alias with full.
        let rep: FidelitySpec = "fidelity=replicate:0.25".parse().unwrap();
        assert_eq!(rep.fidelity_for(0), Fidelity::Rung(0));
        assert_eq!(rep.fidelity_for(1), Fidelity::Rung(1));
        assert_eq!(rep.fidelity_for(2), Fidelity::Full);
        assert!(Fidelity::Rung(1) < Fidelity::Full);
    }
}
