//! Robust replicated measurement: aggregation and outlier rejection.
//!
//! When a backend is noisy (a real measurement rig, or [`crate::NoisyBackend`]
//! standing in for one), a single sample is a bad estimate of a point's
//! cost. [`RobustPolicy`] configures the engine's answer: measure each
//! point `replicates` times, reject gross outliers by their deviation
//! from the median in MAD units (with a bounded re-measurement budget
//! to replace what was rejected), aggregate the survivors with a
//! configurable estimator, and report the residual dispersion so the
//! surrogate can down-weight unreliable points.
//!
//! Every function here is a pure, allocation-honest `f64` computation:
//! sorting uses `total_cmp`, so results are exactly deterministic and
//! independent of input order — the property the aggregation proptests
//! pin across thread counts.

use std::fmt;
use std::str::FromStr;

/// Consistency factor turning a MAD into a Gaussian-comparable scale
/// estimate (`1 / Phi^-1(3/4)`).
pub const MAD_SCALE: f64 = 1.4826;

/// How replicate measurements collapse into one scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Arithmetic mean — efficient under well-behaved noise, not robust.
    Mean,
    /// Median — robust to any minority of corrupted replicates.
    #[default]
    Median,
    /// Mean of the middle values after trimming `floor(n/4)` from each
    /// end — a compromise between the two.
    Trimmed,
}

impl Aggregation {
    /// Stable name, round-tripped by [`FromStr`] and the run manifest.
    pub fn as_str(&self) -> &'static str {
        match self {
            Aggregation::Mean => "mean",
            Aggregation::Median => "median",
            Aggregation::Trimmed => "trimmed",
        }
    }

    /// Collapses `xs` into one scalar.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn apply(&self, xs: &[f64]) -> f64 {
        assert!(!xs.is_empty(), "cannot aggregate zero replicates");
        match self {
            Aggregation::Mean => xs.iter().sum::<f64>() / xs.len() as f64,
            Aggregation::Median => median(xs),
            Aggregation::Trimmed => trimmed_mean(xs),
        }
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a `--robust-agg` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregationError {
    /// The name that failed to resolve.
    pub requested: String,
}

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown aggregation {:?} (valid: mean, median, trimmed)",
            self.requested
        )
    }
}

impl std::error::Error for AggregationError {}

impl FromStr for Aggregation {
    type Err = AggregationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mean" => Ok(Aggregation::Mean),
            "median" => Ok(Aggregation::Median),
            "trimmed" => Ok(Aggregation::Trimmed),
            other => Err(AggregationError {
                requested: other.to_string(),
            }),
        }
    }
}

/// The engine's replicated-measurement policy. The default (one
/// replicate) reproduces single-shot evaluation exactly — no extra
/// backend calls, no aggregation arithmetic, zero dispersion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustPolicy {
    /// Measurements per point. 1 disables replication entirely.
    pub replicates: usize,
    /// How the surviving replicates collapse into one report.
    pub aggregation: Aggregation,
    /// A replicate is rejected when either metric deviates from the
    /// replicate median by more than this many scaled MADs.
    pub mad_threshold: f64,
    /// Upper bound on replacement measurements taken for rejected
    /// replicates, per point.
    pub max_remeasures: usize,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        RobustPolicy {
            replicates: 1,
            aggregation: Aggregation::Median,
            mad_threshold: 3.5,
            max_remeasures: 0,
        }
    }
}

impl RobustPolicy {
    /// A `k`-replicate policy with the default MAD threshold and a
    /// re-measurement budget of `k`.
    pub fn replicated(k: usize, aggregation: Aggregation) -> Self {
        RobustPolicy {
            replicates: k.max(1),
            aggregation,
            mad_threshold: 3.5,
            max_remeasures: k.max(1),
        }
    }

    /// True when the policy is single-shot (today's default behaviour).
    pub fn is_single_shot(&self) -> bool {
        self.replicates <= 1
    }
}

/// What replicated measurement did for one point. Cached alongside the
/// aggregated report so cache hits replay the same summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplicateSummary {
    /// Backend measurements taken (initial replicates + re-measures).
    pub measurements: u64,
    /// Measurements discarded as outliers.
    pub rejected: u64,
    /// Relative dispersion of the surviving replicates: the larger of
    /// the two metrics' scaled-MAD-over-median ratios. Zero for
    /// single-shot measurement.
    pub dispersion: f64,
}

impl ReplicateSummary {
    /// The summary of an un-replicated measurement.
    pub fn single() -> Self {
        ReplicateSummary {
            measurements: 1,
            rejected: 0,
            dispersion: 0.0,
        }
    }
}

/// Exact-`f64` median: sorts a copy with `total_cmp` (so the result is
/// independent of input order, NaNs included) and averages the middle
/// pair for even lengths.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of zero values");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Mean after trimming `floor(n/4)` values from each end of the sorted
/// order — so up to a quarter of the replicates may be corrupted on
/// either side without moving the estimate's support.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn trimmed_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "trimmed mean of zero values");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let trim = sorted.len() / 4;
    let kept = &sorted[trim..sorted.len() - trim];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Median absolute deviation from `center`.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|&x| (x - center).abs()).collect();
    median(&devs)
}

/// Per-value outlier flags: a value is an outlier when it is non-finite
/// or deviates from the median by more than `threshold` scaled MADs.
/// When the MAD collapses to zero (a majority of identical values), any
/// deviation at all is an outlier.
pub fn outlier_flags(xs: &[f64], threshold: f64) -> Vec<bool> {
    let med = median(xs);
    let scale = MAD_SCALE * mad(xs, med);
    xs.iter()
        .map(|&x| {
            if !x.is_finite() {
                return true;
            }
            let dev = (x - med).abs();
            if scale > 0.0 {
                dev > threshold * scale
            } else {
                dev > 0.0
            }
        })
        .collect()
}

/// Relative dispersion of `xs`: scaled MAD over the absolute median,
/// or zero when the median is zero (degenerate) or `xs` has one value.
pub fn relative_dispersion(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let med = median(xs);
    if med == 0.0 || !med.is_finite() {
        return 0.0;
    }
    MAD_SCALE * mad(xs, med) / med.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_independent_and_exact() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
        // NaNs sort to an end under total_cmp and cannot reach the
        // middle while they are a minority.
        assert_eq!(median(&[f64::NAN, 2.0, 2.0]), 2.0);
    }

    #[test]
    fn trimmed_mean_drops_a_quarter_from_each_end() {
        // n=5: trim 1 each end, mean of the middle 3.
        assert_eq!(trimmed_mean(&[100.0, 1.0, 2.0, 3.0, -50.0]), 2.0);
        // n=3: trim 0 — plain mean.
        assert_eq!(trimmed_mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(trimmed_mean(&[7.0]), 7.0);
    }

    #[test]
    fn aggregation_parses_and_round_trips() {
        for agg in [Aggregation::Mean, Aggregation::Median, Aggregation::Trimmed] {
            assert_eq!(agg.as_str().parse::<Aggregation>().unwrap(), agg);
        }
        let err = "mode".parse::<Aggregation>().unwrap_err();
        assert!(err.to_string().contains("median"));
    }

    #[test]
    fn outlier_flags_catch_gross_and_nonfinite_values() {
        let xs = [10.0, 10.1, 9.9, 10.05, 1000.0];
        let flags = outlier_flags(&xs, 3.5);
        assert_eq!(flags, vec![false, false, false, false, true]);
        let with_nan = [10.0, 10.1, 9.9, f64::NAN];
        assert!(outlier_flags(&with_nan, 3.5)[3]);
        // MAD zero: everything off the median is an outlier.
        let constant = [5.0, 5.0, 5.0, 6.0];
        assert_eq!(
            outlier_flags(&constant, 3.5),
            vec![false, false, false, true]
        );
    }

    #[test]
    fn dispersion_is_scale_free_and_zero_for_singletons() {
        assert_eq!(relative_dispersion(&[42.0]), 0.0);
        let small = [1.0, 1.1, 0.9, 1.05, 0.95];
        let big: Vec<f64> = small.iter().map(|x| x * 1e9).collect();
        let a = relative_dispersion(&small);
        let b = relative_dispersion(&big);
        assert!(a > 0.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn default_policy_is_single_shot() {
        let p = RobustPolicy::default();
        assert!(p.is_single_shot());
        assert!(!RobustPolicy::replicated(5, Aggregation::Median).is_single_shot());
    }
}
