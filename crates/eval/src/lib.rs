//! Unified evaluation engine for every Spotlight search driver.
//!
//! Historically each driver — the Spotlight co-design loop, the ablation
//! variants, and the restricted ConfuciuX/HASCO baselines — called
//! [`CostModel::evaluate`] directly and hand-threaded its own
//! `evaluations += ...` bookkeeping. This crate centralizes that plumbing
//! behind two abstractions:
//!
//! * [`CostBackend`] — a pluggable "what does a (hardware, schedule,
//!   layer) triple cost" oracle. Three implementations ship here:
//!   [`MaestroBackend`] (the analytical MAESTRO-like model),
//!   [`SimBackend`] (the cycle-approximate tile simulator, falling back
//!   to the analytical model when a loop nest exceeds the iteration
//!   cap), and [`TimeloopBackend`] (the independent loop-centric model
//!   used for cross-model validation).
//! * [`EvalEngine`] — owns a backend, a memoized cache keyed by the full
//!   `(HardwareConfig, Schedule, ConvLayer)` triple, and the
//!   instrumentation counters (logical evaluations, cache hits/misses,
//!   infeasible proposals, software searches, per-phase wall time) that
//!   searchers previously tracked ad hoc.
//!
//! The engine is `Sync`: the cache sits behind a `Mutex` and every
//! counter is an `AtomicU64`, so scoped worker threads in the parallel
//! layerwise search share one engine by reference.
//!
//! # Determinism
//!
//! `evaluate` is a pure function of its arguments for every shipped
//! backend, so memoization never changes a search result — a cached
//! replay returns bit-identical `CostReport`s. The *logical* counters
//! (`evaluations`, `infeasible`, `sw_searches`) count queries, not
//! backend invocations, and are therefore reproducible across thread
//! counts and cache settings. `cache_hits`/`cache_misses` describe the
//! physical cache and may shift by a few counts under concurrent access
//! (two threads can race to fill the same key — both then record a
//! miss), which is harmless because both compute the same value.
//!
//! # Failure model
//!
//! Backends may fail transiently ([`EvalError::Transient`]), return
//! NaN-poisoned reports (sanitized into [`EvalError::Poisoned`]), or
//! panic. The engine retries transients inline with a bounded
//! deterministic backoff ([`RetryPolicy`]) and quarantines keys that
//! exhaust their retries or poison: later queries for a quarantined key
//! short-circuit to [`EvalError::Quarantined`] without touching the
//! backend. Panics are *not* caught here — the parallel layerwise
//! search isolates them per worker. [`FaultInjectingBackend`] injects
//! all four failure modes from a seeded, replayable schedule.
//!
//! # Noise model
//!
//! Orthogonally to hard failures, backends may return *noisy* scalars —
//! correct in expectation but wrong per sample. [`NoisyBackend`] injects
//! seeded multiplicative noise (Gaussian or heavy-tailed) for rehearsal,
//! and [`RobustPolicy`] configures the engine's countermeasure:
//! k-replicate measurement, MAD-based outlier rejection with bounded
//! re-measurement, configurable aggregation (mean / median / trimmed
//! mean), and a per-point dispersion estimate
//! ([`ReplicateSummary::dispersion`]) that flows to heteroscedastic
//! surrogates. The single-shot default reproduces plain evaluation
//! exactly.
//!
//! # Fidelity model
//!
//! A [`FidelitySpec`] turns the engine multi-fidelity: searches may
//! evaluate through [`EvalEngine::evaluate_at`] with a [`Fidelity`] tag,
//! and cheap rungs measure with fewer replicates or a coarser backend.
//! The memo cache is keyed by the tag, so cheap and full observations
//! never alias, and cheap reports carry the rung's calibrated variance
//! inflation in their dispersion so surrogates trust them less.
//!
//! # Construction
//!
//! [`EvalEngineBuilder`] (via [`EvalEngine::builder`]) is the one way to
//! assemble a configured engine. It composes, in canonical order:
//! backend → fault injection → measurement noise → robust measurement →
//! fidelity ladder → cache, and rejects invalid combinations with a
//! typed [`BuildError`] instead of silently misbehaving.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod fault;
mod fidelity;
mod noise;
mod robust;

pub use fault::{key_fingerprint, FaultDecision, FaultInjectingBackend, FaultPlan, FaultPlanError};
pub use fidelity::{Fidelity, FidelityMode, FidelitySpec, FidelitySpecError};
pub use noise::{NoiseModel, NoisePlan, NoisePlanError, NoisyBackend};
pub use robust::{
    mad, median, outlier_flags, relative_dispersion, trimmed_mean, Aggregation, AggregationError,
    ReplicateSummary, RobustPolicy, MAD_SCALE,
};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use spotlight_accel::HardwareConfig;
use spotlight_conv::ConvLayer;
use spotlight_maestro::sim::{simulate, SimError};
use spotlight_maestro::{CostModel, CostReport, MappingError};
use spotlight_obs::{Event, Observer};
use spotlight_space::Schedule;
use spotlight_timeloop::{TimeloopError, TimeloopModel};

/// Stable names of every shipped backend, in CLI display order.
pub const BACKEND_NAMES: [&str; 3] = ["maestro", "sim", "timeloop"];

/// Error for [`EvalEngine::by_name`]: the requested backend does not
/// exist. The `Display` form lists every valid name, so front ends (the
/// CLI included) print this instead of maintaining their own copy of the
/// backend menu.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The name that failed to resolve.
    pub requested: String,
}

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (valid backends: {})",
            self.requested,
            BACKEND_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownBackend {}

/// Why a proposal could not be costed. Wraps the originating model's
/// error so callers can still inspect overflow byte counts etc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalError {
    /// The analytical model rejected the mapping.
    Mapping(MappingError),
    /// The simulator rejected the mapping (infeasible or too large with
    /// no fallback available).
    Sim(SimError),
    /// The Timeloop-like model rejected the mapping.
    Timeloop(TimeloopError),
    /// The backend failed transiently; the same query may succeed on
    /// retry. Never cached.
    Transient,
    /// The backend produced a non-finite (NaN/inf) delay or energy —
    /// a corrupted report the engine refuses to propagate. Never cached.
    Poisoned,
    /// The key exhausted its retries (or poisoned) earlier in this run
    /// and is quarantined: the backend is no longer consulted for it.
    Quarantined,
}

impl EvalError {
    /// True for errors that mean "this mapping is genuinely infeasible"
    /// — a deterministic property of the triple, safe to memoize.
    /// False for the failure-model errors (transient / poisoned /
    /// quarantined), which describe the run, not the design point.
    pub fn is_infeasible(&self) -> bool {
        matches!(
            self,
            EvalError::Mapping(_) | EvalError::Sim(_) | EvalError::Timeloop(_)
        )
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Mapping(e) => write!(f, "{e}"),
            EvalError::Sim(e) => write!(f, "{e}"),
            EvalError::Timeloop(e) => write!(f, "{e}"),
            EvalError::Transient => write!(f, "transient backend failure"),
            EvalError::Poisoned => write!(f, "backend returned a non-finite cost report"),
            EvalError::Quarantined => write!(f, "point quarantined after repeated failures"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<MappingError> for EvalError {
    fn from(e: MappingError) -> Self {
        EvalError::Mapping(e)
    }
}

/// A pluggable cost oracle for one `(hardware, schedule, layer)` triple.
///
/// Implementations must be pure: the same arguments must always produce
/// the same result, because [`EvalEngine`] memoizes on the arguments
/// alone. `Send + Sync` lets one backend serve scoped worker threads.
pub trait CostBackend: Send + Sync {
    /// Short stable name for reports and CLI selection.
    fn name(&self) -> &'static str;

    /// The canonical fault-plan spec when this backend injects faults
    /// (see [`FaultInjectingBackend`]); `None` for real backends. The
    /// run manifest records this so `resume` rebuilds the identical
    /// fault schedule.
    fn faults(&self) -> Option<String> {
        None
    }

    /// The canonical noise-plan spec when this backend injects
    /// measurement noise (see [`NoisyBackend`]); `None` for real
    /// backends. Recorded in the run manifest like `faults`.
    fn noise(&self) -> Option<String> {
        None
    }

    /// Costs the triple, or explains why it is infeasible.
    fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError>;
}

/// The analytical MAESTRO-like model — the paper's primary fidelity.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaestroBackend {
    model: CostModel,
}

impl MaestroBackend {
    pub fn new(model: CostModel) -> Self {
        MaestroBackend { model }
    }
}

impl CostBackend for MaestroBackend {
    fn name(&self) -> &'static str {
        "maestro"
    }

    fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        self.model
            .evaluate(hw, sched, layer)
            .map_err(EvalError::Mapping)
    }
}

/// The cycle-approximate tile simulator, with an analytical fallback.
///
/// Feasibility rules match the analytical model. For feasible mappings
/// the simulated delay and DRAM traffic replace the analytical
/// estimates (energy, area, and the breakdown fields stay analytical —
/// the simulator does not model them). Loop nests whose outer
/// iteration count exceeds `max_iterations` fall back to the purely
/// analytical report instead of erroring, so searches never lose a
/// feasible point to the simulation cap.
#[derive(Debug, Clone, Copy)]
pub struct SimBackend {
    model: CostModel,
    max_iterations: u64,
}

impl SimBackend {
    pub fn new(model: CostModel, max_iterations: u64) -> Self {
        SimBackend {
            model,
            max_iterations,
        }
    }
}

impl Default for SimBackend {
    fn default() -> Self {
        SimBackend::new(CostModel::default(), 1 << 20)
    }
}

impl CostBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        let analytical = self
            .model
            .evaluate(hw, sched, layer)
            .map_err(EvalError::Mapping)?;
        match simulate(hw, sched, layer, self.max_iterations) {
            Ok(sim) => Ok(CostReport {
                delay_cycles: sim.delay_cycles,
                dram_bytes: sim.dram_bytes,
                ..analytical
            }),
            Err(SimError::TooLarge { .. }) => Ok(analytical),
            Err(e @ SimError::Infeasible(_)) => Err(EvalError::Sim(e)),
        }
    }
}

/// The independent Timeloop-like model (Section VII-F cross-check).
///
/// Only delay, energy, and DRAM traffic are modeled; the remaining
/// `CostReport` fields are zero. Searches driven by this backend
/// optimize the same EDP/delay objectives the report exposes.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeloopBackend {
    model: TimeloopModel,
}

impl TimeloopBackend {
    pub fn new(model: TimeloopModel) -> Self {
        TimeloopBackend { model }
    }
}

impl CostBackend for TimeloopBackend {
    fn name(&self) -> &'static str {
        "timeloop"
    }

    fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        let r = self
            .model
            .evaluate(hw, sched, layer)
            .map_err(EvalError::Timeloop)?;
        Ok(CostReport {
            delay_cycles: r.delay_cycles,
            energy_nj: r.energy_nj,
            dram_bytes: r.dram_bytes,
            ..CostReport::zeroed_for_tests(0.0, 0.0)
        })
    }
}

/// Builds the boxed backend named by `name` (see [`BACKEND_NAMES`]).
/// The building block behind [`EvalEngine::by_name`], exposed so
/// callers can decorate the backend (e.g. with
/// [`FaultInjectingBackend`]) before handing it to the engine.
pub fn backend_by_name(name: &str) -> Result<Box<dyn CostBackend>, UnknownBackend> {
    match name {
        "maestro" => Ok(Box::new(MaestroBackend::default())),
        "sim" => Ok(Box::new(SimBackend::default())),
        "timeloop" => Ok(Box::new(TimeloopBackend::default())),
        _ => Err(UnknownBackend {
            requested: name.to_string(),
        }),
    }
}

type CacheKey = (HardwareConfig, Schedule, ConvLayer, Fidelity);
type CacheValue = Result<(CostReport, ReplicateSummary), EvalError>;

/// The memo cache: a hash map plus an insertion-order queue that backs
/// the deterministic FIFO eviction policy of a capacity-bounded cache.
/// With no capacity set (the default) the queue stays empty and the
/// behaviour is the historical unbounded map.
struct MemoCache {
    map: HashMap<CacheKey, CacheValue>,
    /// Insertion order of the resident keys; maintained only when a
    /// capacity is set.
    order: std::collections::VecDeque<CacheKey>,
    cap: Option<usize>,
}

impl MemoCache {
    fn new(cap: Option<usize>) -> Self {
        MemoCache {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            cap,
        }
    }

    /// Inserts `value`, evicting oldest entries past the capacity.
    /// Returns how many entries were evicted.
    fn insert(&mut self, key: CacheKey, value: CacheValue) -> u64 {
        let mut evicted = 0;
        if self.map.insert(key, value).is_none() {
            if let Some(cap) = self.cap {
                self.order.push_back(key);
                while self.map.len() > cap {
                    match self.order.pop_front() {
                        Some(old) => {
                            if self.map.remove(&old).is_some() {
                                evicted += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
        }
        evicted
    }
}

/// A memo-cache handle that several [`EvalEngine`]s can share.
///
/// Concurrent jobs evaluating overlapping design points reuse each
/// other's backend results through it; each engine still keeps its own
/// hit/miss counters, so per-job accounting is unaffected by who warmed
/// the cache. Sharing is only sound between engines with identical
/// evaluation semantics (same backend, fault plan, noise plan, and
/// robust policy) — a caller pairing engines with different semantics
/// would cross-contaminate their memoized costs.
#[derive(Clone)]
pub struct SharedCache {
    inner: Arc<Mutex<MemoCache>>,
}

impl fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCache")
            .field("len", &self.len())
            .finish()
    }
}

impl SharedCache {
    /// A fresh cache, FIFO-bounded to `cap` entries when given.
    pub fn new(cap: Option<usize>) -> Self {
        SharedCache {
            inner: Arc::new(Mutex::new(MemoCache::new(cap))),
        }
    }

    /// Number of memoized triples currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Monotonic, process-lifetime counters aggregated across every engine
/// that carries a handle to them (see [`EvalEngine::with_global_stats`]).
///
/// Unlike an engine's own counters these are never reset or restored:
/// `reset_stats` / `restore_logical_counters` rewrite per-run logical
/// accounting, while these record operational totals — what the process
/// actually did — which is what a metrics endpoint should export. A
/// crash-recovered job therefore double-counts its replayed work here,
/// deliberately: the work really was performed twice.
#[derive(Default)]
pub struct GlobalEvalStats {
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    infeasible: AtomicU64,
    quarantined: AtomicU64,
    transient_retries: AtomicU64,
    failed_layers: AtomicU64,
    sw_searches: AtomicU64,
    evictions: AtomicU64,
    replicate_measurements: AtomicU64,
    outliers_rejected: AtomicU64,
    fidelity_cheap_evals: AtomicU64,
    fidelity_full_evals: AtomicU64,
    phase_wall: Mutex<BTreeMap<&'static str, Duration>>,
}

impl fmt::Debug for GlobalEvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalEvalStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl GlobalEvalStats {
    /// Snapshot of the aggregated counters, in [`EvalStats`] form.
    pub fn snapshot(&self) -> EvalStats {
        EvalStats {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            infeasible: self.infeasible.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            transient_retries: self.transient_retries.load(Ordering::Relaxed),
            failed_layers: self.failed_layers.load(Ordering::Relaxed),
            sw_searches: self.sw_searches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            replicate_measurements: self.replicate_measurements.load(Ordering::Relaxed),
            outliers_rejected: self.outliers_rejected.load(Ordering::Relaxed),
            fidelity_cheap_evals: self.fidelity_cheap_evals.load(Ordering::Relaxed),
            fidelity_full_evals: self.fidelity_full_evals.load(Ordering::Relaxed),
            phase_wall: self
                .phase_wall
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// Snapshot of an engine's instrumentation counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalStats {
    /// Logical cost queries answered (cache hits included).
    pub evaluations: u64,
    /// Queries answered without invoking the backend (memo cache, or
    /// the quarantine short-circuit).
    pub cache_hits: u64,
    /// Queries that invoked the backend.
    pub cache_misses: u64,
    /// Queries that returned an infeasibility error.
    pub infeasible: u64,
    /// Queries that ended in a failure-model error (transient retries
    /// exhausted, poisoned report, or quarantine short-circuit).
    pub quarantined: u64,
    /// Transient backend failures that were retried inline.
    pub transient_retries: u64,
    /// Layers abandoned after a worker panicked twice.
    pub failed_layers: u64,
    /// Software-schedule searches driven through the engine.
    pub sw_searches: u64,
    /// Cache entries evicted by the capacity bound.
    pub evictions: u64,
    /// Backend measurements taken for replicated queries (initial
    /// replicates plus re-measures); zero under the single-shot default.
    pub replicate_measurements: u64,
    /// Replicate measurements discarded as outliers.
    pub outliers_rejected: u64,
    /// Logical queries answered at a cheap fidelity rung; zero unless a
    /// [`FidelitySpec`] is attached.
    pub fidelity_cheap_evals: u64,
    /// Logical queries answered at full fidelity while a
    /// [`FidelitySpec`] is attached; zero otherwise. The ratio of a
    /// no-fidelity baseline's `evaluations` to this number is the
    /// full-fidelity-evaluation saving the ladder bought.
    pub fidelity_full_evals: u64,
    /// Accumulated wall time per named phase, sorted by phase name.
    pub phase_wall: Vec<(String, Duration)>,
}

/// Bounded, deterministic retry schedule for [`EvalError::Transient`].
///
/// Backoff for retry `n` (1-based) is `base << (n - 1)`, capped at
/// `cap`. The schedule is a pure function of the attempt number — no
/// jitter — so retried runs consume identical wall-clock *structure*
/// and fault schedules stay replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per query, initial call included. 1 disables
    /// retries. Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let shifted = self
            .base
            .checked_mul(1u32 << (retry - 1).min(16))
            .unwrap_or(self.cap);
        shifted.min(self.cap)
    }
}

impl EvalStats {
    /// Fraction of queries served from cache, or 0 when nothing ran.
    pub fn hit_rate(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.evaluations as f64
        }
    }
}

/// Memoizing, instrumented front door to a [`CostBackend`].
///
/// ```
/// use spotlight_eval::EvalEngine;
/// use spotlight_accel::{DataflowStyle, HardwareConfig};
/// use spotlight_conv::ConvLayer;
/// use spotlight_space::dataflows::dataflow_schedule;
///
/// let engine = EvalEngine::maestro();
/// let hw = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
/// let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
/// let sched = dataflow_schedule(DataflowStyle::WeightStationary, &layer, &hw);
/// let a = engine.evaluate(&hw, &sched, &layer);
/// let b = engine.evaluate(&hw, &sched, &layer);
/// assert_eq!(a, b);
/// let stats = engine.stats();
/// assert_eq!(stats.evaluations, 2);
/// assert_eq!(stats.cache_hits, 1);
/// ```
pub struct EvalEngine {
    backend: Box<dyn CostBackend>,
    cache: Option<Arc<Mutex<MemoCache>>>,
    /// Process-wide counter mirror; every local increment is repeated
    /// here when attached (see [`EvalEngine::with_global_stats`]).
    global: Option<Arc<GlobalEvalStats>>,
    retry: RetryPolicy,
    robust: RobustPolicy,
    /// The multi-fidelity ladder, when one is attached; shapes how
    /// [`EvalEngine::evaluate_at`] measures cheap rungs.
    fidelity: Option<FidelitySpec>,
    /// The coarse backend cheap rungs dispatch to in
    /// [`FidelityMode::Backend`]; `None` in the other modes.
    cheap_backend: Option<Box<dyn CostBackend>>,
    /// Wall-clock point past which retry backoff must not sleep; set by
    /// deadline-bounded drivers so a latency-spike fault schedule cannot
    /// stall a worker past the budget.
    deadline: Mutex<Option<Instant>>,
    /// Fingerprints of keys whose retries were exhausted (or poisoned).
    quarantine: Mutex<HashSet<u64>>,
    /// Mirror of `quarantine.len()`: lets the fault-free hot path skip
    /// the quarantine lock with a single relaxed load.
    quarantine_len: AtomicU64,
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    infeasible: AtomicU64,
    quarantined: AtomicU64,
    transient_retries: AtomicU64,
    failed_layers: AtomicU64,
    sw_searches: AtomicU64,
    evictions: AtomicU64,
    replicate_measurements: AtomicU64,
    outliers_rejected: AtomicU64,
    fidelity_cheap_evals: AtomicU64,
    fidelity_full_evals: AtomicU64,
    phase_wall: Mutex<BTreeMap<&'static str, Duration>>,
}

impl fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalEngine")
            .field("backend", &self.backend.name())
            .field("cache_enabled", &self.cache.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for EvalEngine {
    fn default() -> Self {
        EvalEngine::maestro()
    }
}

impl EvalEngine {
    /// Wraps an arbitrary backend with caching enabled.
    pub fn new(backend: Box<dyn CostBackend>) -> Self {
        EvalEngine {
            backend,
            cache: Some(Arc::new(Mutex::new(MemoCache::new(None)))),
            global: None,
            retry: RetryPolicy::default(),
            robust: RobustPolicy::default(),
            fidelity: None,
            cheap_backend: None,
            deadline: Mutex::new(None),
            quarantine: Mutex::new(HashSet::new()),
            quarantine_len: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            infeasible: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            transient_retries: AtomicU64::new(0),
            failed_layers: AtomicU64::new(0),
            sw_searches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            replicate_measurements: AtomicU64::new(0),
            outliers_rejected: AtomicU64::new(0),
            fidelity_cheap_evals: AtomicU64::new(0),
            fidelity_full_evals: AtomicU64::new(0),
            phase_wall: Mutex::new(BTreeMap::new()),
        }
    }

    /// The default analytical engine.
    pub fn maestro() -> Self {
        EvalEngine::new(Box::new(MaestroBackend::default()))
    }

    /// Analytical engine around an explicit cost model.
    pub fn with_model(model: CostModel) -> Self {
        EvalEngine::new(Box::new(MaestroBackend::new(model)))
    }

    /// Cycle-approximate engine (simulator with analytical fallback).
    pub fn sim() -> Self {
        EvalEngine::new(Box::new(SimBackend::default()))
    }

    /// Independent Timeloop-like engine.
    pub fn timeloop() -> Self {
        EvalEngine::new(Box::new(TimeloopBackend::default()))
    }

    /// Builds the engine named by `name` (see [`BACKEND_NAMES`]). The
    /// error's `Display` lists the valid names:
    ///
    /// ```
    /// use spotlight_eval::EvalEngine;
    /// let err = EvalEngine::by_name("verilator").unwrap_err();
    /// assert!(err.to_string().contains("maestro, sim, timeloop"));
    /// ```
    pub fn by_name(name: &str) -> Result<Self, UnknownBackend> {
        Ok(EvalEngine::new(backend_by_name(name)?))
    }

    /// Starts a builder: the one construction path for configured
    /// engines (faults, noise, robust measurement, fidelity, cache).
    /// See [`EvalEngineBuilder`] for the composition order.
    pub fn builder() -> EvalEngineBuilder {
        EvalEngineBuilder::new()
    }

    /// Disables memoization (every query hits the backend).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Attaches a [`SharedCache`], replacing the engine's private cache.
    /// The caller is responsible for only sharing between engines with
    /// identical evaluation semantics (backend, faults, noise, robust
    /// policy); the per-engine hit/miss/eviction counters keep counting
    /// this engine's own traffic.
    pub fn with_shared_cache(mut self, shared: &SharedCache) -> Self {
        self.cache = Some(shared.inner.clone());
        self
    }

    /// Attaches a [`GlobalEvalStats`] mirror: from now on every counter
    /// increment and phase-wall charge is applied both locally and to
    /// `global`. Per-run resets and checkpoint restores touch only the
    /// local counters, so the mirror accumulates operational totals
    /// across runs, jobs, and engines.
    pub fn with_global_stats(mut self, global: Arc<GlobalEvalStats>) -> Self {
        self.global = Some(global);
        self
    }

    /// Replaces the transient-retry schedule.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The active replicated-measurement policy.
    pub fn robust_policy(&self) -> RobustPolicy {
        self.robust
    }

    /// The attached multi-fidelity ladder, if any.
    pub fn fidelity_spec(&self) -> Option<&FidelitySpec> {
        self.fidelity.as_ref()
    }

    /// The canonical fidelity spec string for the run manifest, `None`
    /// when no ladder is attached.
    pub fn fidelity(&self) -> Option<String> {
        self.fidelity.as_ref().map(|s| s.to_string())
    }

    /// Sets (or clears) the wall-clock deadline the retry backoff must
    /// respect: once a backoff sleep would cross it, the retry loop
    /// gives up immediately instead of sleeping. Drivers set this at
    /// run start from their `--deadline` budget.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.deadline.lock().unwrap_or_else(PoisonError::into_inner) = deadline;
    }

    /// The backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The backend's fault-plan spec, if it injects faults.
    pub fn faults(&self) -> Option<String> {
        self.backend.faults()
    }

    /// The backend's noise-plan spec, if it injects measurement noise.
    pub fn noise(&self) -> Option<String> {
        self.backend.noise()
    }

    /// Bumps a local counter and, when a [`GlobalEvalStats`] mirror is
    /// attached, the matching global counter by the same amount.
    fn count(&self, local: &AtomicU64, pick: fn(&GlobalEvalStats) -> &AtomicU64, n: u64) {
        local.fetch_add(n, Ordering::Relaxed);
        if let Some(global) = &self.global {
            pick(global).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Costs one triple, consulting the quarantine list and the memo
    /// cache before the backend. Transient backend failures are retried
    /// per [`RetryPolicy`]; a query that exhausts its retries (or comes
    /// back poisoned) quarantines its key, and later queries for it
    /// short-circuit to [`EvalError::Quarantined`]. Only deterministic
    /// outcomes (success / infeasibility) are memoized.
    pub fn evaluate(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        self.evaluate_robust(hw, sched, layer).map(|(r, _)| r)
    }

    /// Like [`EvalEngine::evaluate`], additionally returning the
    /// [`ReplicateSummary`] of the measurement — how many replicates
    /// were taken, how many were rejected, and the residual dispersion
    /// that heteroscedastic surrogates consume as observation noise.
    /// Under the single-shot default the summary is
    /// [`ReplicateSummary::single`].
    pub fn evaluate_robust(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<(CostReport, ReplicateSummary), EvalError> {
        self.evaluate_at_robust(hw, sched, layer, Fidelity::Full)
    }

    /// Costs one triple at an explicit [`Fidelity`].
    pub fn evaluate_at(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
        fidelity: Fidelity,
    ) -> Result<CostReport, EvalError> {
        self.evaluate_at_robust(hw, sched, layer, fidelity)
            .map(|(r, _)| r)
    }

    /// Like [`EvalEngine::evaluate_robust`] at an explicit [`Fidelity`].
    /// The memo cache is keyed by the tag, so a cheap rung's report is
    /// never served for a full-fidelity request (or vice versa). Cheap
    /// rungs measure per the attached [`FidelitySpec`] — fewer
    /// replicates or the coarse backend — and their summary's
    /// dispersion is inflated by the rung's calibrated variance before
    /// it reaches the surrogate. Without an attached spec,
    /// `Fidelity::Full` reproduces the historical path bit-for-bit.
    pub fn evaluate_at_robust(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
        fidelity: Fidelity,
    ) -> Result<(CostReport, ReplicateSummary), EvalError> {
        self.count(&self.evaluations, |g| &g.evaluations, 1);
        if self.fidelity.is_some() {
            match fidelity {
                Fidelity::Full => {
                    self.count(&self.fidelity_full_evals, |g| &g.fidelity_full_evals, 1)
                }
                Fidelity::Rung(_) => {
                    self.count(&self.fidelity_cheap_evals, |g| &g.fidelity_cheap_evals, 1)
                }
            }
        }
        // Fault-free runs pay one relaxed load here and never touch the
        // quarantine lock.
        if self.quarantine_len.load(Ordering::Relaxed) > 0 {
            let fp = key_fingerprint(hw, sched, layer);
            let hit = self
                .quarantine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .contains(&fp);
            if hit {
                // Answered without the backend: counts as a cache hit so
                // `evaluations == cache_hits + cache_misses` stays exact.
                self.count(&self.cache_hits, |g| &g.cache_hits, 1);
                self.count(&self.quarantined, |g| &g.quarantined, 1);
                return Err(EvalError::Quarantined);
            }
        }
        let result = match &self.cache {
            Some(cache) => {
                let key = (*hw, *sched, *layer, fidelity);
                let cached = cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .map
                    .get(&key)
                    .copied();
                match cached {
                    Some(r) => {
                        self.count(&self.cache_hits, |g| &g.cache_hits, 1);
                        r
                    }
                    None => {
                        // Compute outside the lock: evaluation dominates
                        // and workers must not serialize on it. Two
                        // threads may race on one key; both store the
                        // same pure value, so last-write-wins is safe.
                        self.count(&self.cache_misses, |g| &g.cache_misses, 1);
                        let r = self.measure_robust(hw, sched, layer, fidelity);
                        let deterministic = match &r {
                            Ok(_) => true,
                            Err(e) => e.is_infeasible(),
                        };
                        if deterministic {
                            let evicted = cache
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(key, r);
                            if evicted > 0 {
                                self.count(&self.evictions, |g| &g.evictions, evicted);
                            }
                        }
                        r
                    }
                }
            }
            None => {
                self.count(&self.cache_misses, |g| &g.cache_misses, 1);
                self.measure_robust(hw, sched, layer, fidelity)
            }
        };
        match result {
            Err(e) if e.is_infeasible() => {
                self.count(&self.infeasible, |g| &g.infeasible, 1);
            }
            Err(EvalError::Transient) | Err(EvalError::Poisoned) => {
                // Retries exhausted or report corrupted: quarantine the
                // key so the run degrades instead of hammering it.
                self.count(&self.quarantined, |g| &g.quarantined, 1);
                let fp = key_fingerprint(hw, sched, layer);
                let mut q = self
                    .quarantine
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if q.insert(fp) {
                    self.quarantine_len.store(q.len() as u64, Ordering::Relaxed);
                }
            }
            _ => {}
        }
        result
    }

    /// Measures one point per the [`RobustPolicy`]: single-shot when
    /// `replicates == 1` (bit-identical to the historical path), else
    /// k replicates, one MAD outlier-rejection pass, a bounded round of
    /// replacement measurements (accepted only when they fall inside
    /// the surviving replicates' cutoff), and configurable aggregation
    /// of the survivors' delay/energy. The remaining report fields come
    /// from the first surviving replicate.
    ///
    /// A cheap [`Fidelity::Rung`] measurement (only reachable with a
    /// [`FidelitySpec`] attached) scales the replicate count down or
    /// dispatches to the coarse backend, per the spec's mode, and
    /// inflates the summary's dispersion by the rung's calibrated
    /// variance so surrogates trust the cheap number proportionally
    /// less.
    fn measure_robust(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
        fidelity: Fidelity,
    ) -> Result<(CostReport, ReplicateSummary), EvalError> {
        let cheap_rung = match (fidelity, &self.fidelity) {
            (Fidelity::Rung(r), Some(spec)) => Some((r, spec)),
            _ => None,
        };
        let backend: &dyn CostBackend = match cheap_rung {
            Some((_, spec)) if spec.mode == FidelityMode::Backend => self
                .cheap_backend
                .as_deref()
                .unwrap_or(self.backend.as_ref()),
            _ => self.backend.as_ref(),
        };
        let inflate = |mut summary: ReplicateSummary| {
            if let Some((r, spec)) = cheap_rung {
                let variance = summary.dispersion * summary.dispersion;
                summary.dispersion = (variance + spec.variance_inflation(r)).sqrt();
            }
            summary
        };
        let k = match cheap_rung {
            Some((r, spec)) if spec.mode == FidelityMode::Replicate => {
                spec.replicates_at(r, self.robust.replicates)
            }
            _ => self.robust.replicates,
        };
        if k <= 1 {
            return self
                .invoke_backend(backend, hw, sched, layer)
                .map(|r| (r, inflate(ReplicateSummary::single())));
        }
        let mut reports = Vec::with_capacity(k);
        for _ in 0..k {
            reports.push(self.invoke_backend(backend, hw, sched, layer)?);
        }
        let mut measurements = k as u64;
        let mut rejected = 0u64;

        // One rejection pass over the initial replicates: a replicate
        // is an outlier when either metric is flagged. Never discard a
        // majority — keep the least-deviant strict majority.
        let delays: Vec<f64> = reports.iter().map(|r| r.delay_cycles).collect();
        let energies: Vec<f64> = reports.iter().map(|r| r.energy_nj).collect();
        let fd = outlier_flags(&delays, self.robust.mad_threshold);
        let fe = outlier_flags(&energies, self.robust.mad_threshold);
        let mut flagged: Vec<usize> = (0..reports.len()).filter(|&i| fd[i] || fe[i]).collect();
        let max_reject = reports.len() - (reports.len() / 2 + 1);
        flagged.truncate(max_reject);
        let mut survivors: Vec<CostReport> = reports
            .iter()
            .enumerate()
            .filter(|(i, _)| !flagged.contains(i))
            .map(|(_, r)| *r)
            .collect();
        rejected += flagged.len() as u64;

        if !flagged.is_empty() {
            // Bounded re-measurement: replace what was rejected, but a
            // replacement only joins the pool if it sits inside the
            // survivors' own cutoff (otherwise it is rejected too).
            let s_delays: Vec<f64> = survivors.iter().map(|r| r.delay_cycles).collect();
            let s_energies: Vec<f64> = survivors.iter().map(|r| r.energy_nj).collect();
            let cutoff = |xs: &[f64], x: f64| {
                let med = median(xs);
                let scale = MAD_SCALE * mad(xs, med);
                let dev = (x - med).abs();
                if scale > 0.0 {
                    dev > self.robust.mad_threshold * scale
                } else {
                    dev > 0.0
                }
            };
            let refill = flagged.len().min(self.robust.max_remeasures);
            for _ in 0..refill {
                let r = self.invoke_backend(backend, hw, sched, layer)?;
                measurements += 1;
                if cutoff(&s_delays, r.delay_cycles) || cutoff(&s_energies, r.energy_nj) {
                    rejected += 1;
                } else {
                    survivors.push(r);
                }
            }
        }

        let delays: Vec<f64> = survivors.iter().map(|r| r.delay_cycles).collect();
        let energies: Vec<f64> = survivors.iter().map(|r| r.energy_nj).collect();
        let report = CostReport {
            delay_cycles: self.robust.aggregation.apply(&delays),
            energy_nj: self.robust.aggregation.apply(&energies),
            ..survivors[0]
        };
        let summary = inflate(ReplicateSummary {
            measurements,
            rejected,
            dispersion: relative_dispersion(&delays).max(relative_dispersion(&energies)),
        });
        self.count(
            &self.replicate_measurements,
            |g| &g.replicate_measurements,
            measurements,
        );
        if rejected > 0 {
            self.count(&self.outliers_rejected, |g| &g.outliers_rejected, rejected);
        }
        Ok((report, summary))
    }

    /// One backend invocation with inline transient retries and report
    /// sanitization. Panics from the backend propagate (the layerwise
    /// search isolates them per worker). Backoff sleeps are clamped to
    /// the remaining deadline budget — with the deadline already
    /// expired the remaining budget saturates to zero and the retry
    /// loop gives up immediately, so deadline-bounded runs degrade
    /// instead of stalling in a sleep that outlives the budget.
    fn invoke_backend(
        &self,
        backend: &dyn CostBackend,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
    ) -> Result<CostReport, EvalError> {
        let mut attempt: u32 = 1;
        loop {
            let result = match backend.evaluate(hw, sched, layer) {
                Ok(r) if !r.delay_cycles.is_finite() || !r.energy_nj.is_finite() => {
                    Err(EvalError::Poisoned)
                }
                other => other,
            };
            match result {
                Err(EvalError::Transient) if attempt < self.retry.max_attempts => {
                    let pause = match self.remaining_deadline() {
                        Some(remaining) if remaining.is_zero() => return Err(EvalError::Transient),
                        Some(remaining) => self.retry.backoff(attempt).min(remaining),
                        None => self.retry.backoff(attempt),
                    };
                    self.count(&self.transient_retries, |g| &g.transient_retries, 1);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Wall-clock budget left before the engine deadline, saturating at
    /// zero once it has passed; `None` without a deadline.
    fn remaining_deadline(&self) -> Option<Duration> {
        self.deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// Like [`EvalEngine::evaluate`], additionally reporting the outcome
    /// to `obs` as a [`Event::ScheduleEvaluated`] or [`Event::Infeasible`]
    /// trace event tagged with the search step. This is the single point
    /// where every observed search driver attributes an evaluation to its
    /// enclosing `(hw_sample, layer)` span; with a disabled observer it
    /// costs one branch over the plain call.
    pub fn evaluate_observed(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
        obs: &Observer,
        step: u64,
    ) -> Result<CostReport, EvalError> {
        self.evaluate_observed_robust(hw, sched, layer, obs, step)
            .map(|(r, _)| r)
    }

    /// Like [`EvalEngine::evaluate_observed`], additionally returning
    /// the [`ReplicateSummary`] and emitting `replicate_summary` /
    /// `outlier_rejected` trace events when replication actually
    /// happened. Single-shot measurement emits exactly the historical
    /// event stream.
    pub fn evaluate_observed_robust(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
        obs: &Observer,
        step: u64,
    ) -> Result<(CostReport, ReplicateSummary), EvalError> {
        self.evaluate_at_observed_robust(hw, sched, layer, Fidelity::Full, obs, step)
    }

    /// Like [`EvalEngine::evaluate_observed_robust`] at an explicit
    /// [`Fidelity`]. The emitted trace events are identical in shape;
    /// only the measurement (and its cache key) differ by rung.
    pub fn evaluate_at_observed_robust(
        &self,
        hw: &HardwareConfig,
        sched: &Schedule,
        layer: &ConvLayer,
        fidelity: Fidelity,
        obs: &Observer,
        step: u64,
    ) -> Result<(CostReport, ReplicateSummary), EvalError> {
        let result = self.evaluate_at_robust(hw, sched, layer, fidelity);
        match &result {
            Ok((report, summary)) => {
                obs.emit_with(|| Event::ScheduleEvaluated {
                    step,
                    delay_cycles: report.delay_cycles,
                    energy_nj: report.energy_nj,
                });
                if summary.measurements > 1 {
                    let s = *summary;
                    obs.emit_with(|| Event::ReplicateSummary {
                        step,
                        measurements: s.measurements,
                        rejected: s.rejected,
                        dispersion: s.dispersion,
                    });
                    if s.rejected > 0 {
                        obs.emit_with(|| Event::OutlierRejected {
                            step,
                            count: s.rejected,
                        });
                    }
                }
            }
            Err(e) if e.is_infeasible() => obs.emit_with(|| Event::Infeasible {
                step,
                reason: e.to_string(),
            }),
            Err(e) => obs.emit_with(|| Event::Quarantined {
                step,
                reason: e.to_string(),
            }),
        }
        result
    }

    /// Records one software-schedule search driven through this engine.
    /// Search drivers call this once per per-layer schedule search so
    /// accounting tests can assert `evaluations == sw_searches * budget`
    /// exactly.
    pub fn count_sw_search(&self) {
        self.count(&self.sw_searches, |g| &g.sw_searches, 1);
    }

    /// Records one layer abandoned after its worker panicked twice.
    pub fn count_failed_layer(&self) {
        self.count(&self.failed_layers, |g| &g.failed_layers, 1);
    }

    /// Restores the *logical* counters from a checkpoint when resuming
    /// a killed run. Cache hit/miss counters deliberately stay at zero:
    /// they describe the physical cache of this process, which starts
    /// cold, while the logical counters describe the search so far and
    /// must carry over for the final report to match an uninterrupted
    /// run.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_logical_counters(
        &self,
        evaluations: u64,
        sw_searches: u64,
        infeasible: u64,
        quarantined: u64,
        failed_layers: u64,
        outliers_rejected: u64,
    ) {
        self.evaluations.store(evaluations, Ordering::Relaxed);
        self.sw_searches.store(sw_searches, Ordering::Relaxed);
        self.infeasible.store(infeasible, Ordering::Relaxed);
        self.quarantined.store(quarantined, Ordering::Relaxed);
        self.failed_layers.store(failed_layers, Ordering::Relaxed);
        self.outliers_rejected
            .store(outliers_rejected, Ordering::Relaxed);
    }

    /// Runs `f`, charging its wall time to the named phase.
    pub fn time_phase<T>(&self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_phase_wall(phase, start.elapsed());
        out
    }

    /// Charges an externally measured duration to the named phase. Used by
    /// drivers that harvest timers a component accumulated on its own —
    /// e.g. the daBO surrogate's fit/acquisition split, which is measured
    /// inside the searcher and folded in here after the search loop.
    pub fn add_phase_wall(&self, phase: &'static str, elapsed: Duration) {
        *self
            .phase_wall
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(phase)
            .or_insert(Duration::ZERO) += elapsed;
        if let Some(global) = &self.global {
            *global
                .phase_wall
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(phase)
                .or_insert(Duration::ZERO) += elapsed;
        }
    }

    /// Logical queries answered so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            infeasible: self.infeasible.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            transient_retries: self.transient_retries.load(Ordering::Relaxed),
            failed_layers: self.failed_layers.load(Ordering::Relaxed),
            sw_searches: self.sw_searches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            replicate_measurements: self.replicate_measurements.load(Ordering::Relaxed),
            outliers_rejected: self.outliers_rejected.load(Ordering::Relaxed),
            fidelity_cheap_evals: self.fidelity_cheap_evals.load(Ordering::Relaxed),
            fidelity_full_evals: self.fidelity_full_evals.load(Ordering::Relaxed),
            phase_wall: self
                .phase_wall
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    /// Zeroes every counter and phase timer. The memo cache and the
    /// quarantine list survive so later runs still benefit from earlier
    /// work; call [`EvalEngine::clear_cache`] to drop the cache too.
    pub fn reset_stats(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.infeasible.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
        self.transient_retries.store(0, Ordering::Relaxed);
        self.failed_layers.store(0, Ordering::Relaxed);
        self.sw_searches.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.replicate_measurements.store(0, Ordering::Relaxed);
        self.outliers_rejected.store(0, Ordering::Relaxed);
        self.fidelity_cheap_evals.store(0, Ordering::Relaxed);
        self.fidelity_full_evals.store(0, Ordering::Relaxed);
        self.phase_wall
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Drops every memoized result.
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            let mut guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
            guard.map.clear();
            guard.order.clear();
        }
    }

    /// Number of distinct triples currently memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| {
            c.lock().unwrap_or_else(PoisonError::into_inner).map.len()
        })
    }

    /// Number of quarantined keys.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine_len.load(Ordering::Relaxed) as usize
    }
}

/// A configuration the [`EvalEngineBuilder`] rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A backend name (primary or cheap-fidelity) failed to resolve.
    UnknownBackend(UnknownBackend),
    /// The requested pieces contradict each other; the message names
    /// the conflict.
    InvalidCombination {
        /// Human-readable description of the conflict.
        message: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownBackend(e) => write!(f, "{e}"),
            BuildError::InvalidCombination { message } => {
                write!(f, "invalid engine configuration: {message}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<UnknownBackend> for BuildError {
    fn from(e: UnknownBackend) -> Self {
        BuildError::UnknownBackend(e)
    }
}

/// Which cache the built engine carries.
enum CacheChoice {
    /// Private unbounded cache (the default).
    Private,
    /// Private cache, FIFO-bounded to this many entries.
    Capped(usize),
    /// A [`SharedCache`] handle other engines may also hold.
    Shared(SharedCache),
    /// No memoization at all.
    Disabled,
}

/// The single construction path for configured [`EvalEngine`]s.
///
/// Pieces compose in one canonical order, regardless of the order the
/// setters are called in:
///
/// 1. **backend** — by name ([`EvalEngineBuilder::backend`]) or an
///    explicit instance ([`EvalEngineBuilder::custom_backend`]);
/// 2. **faults** — a [`FaultInjectingBackend`] wraps the backend;
/// 3. **noise** — a [`NoisyBackend`] wraps the (possibly faulty)
///    backend, so a report that survives the fault schedule is then
///    perturbed;
/// 4. **robust** — the k-replicate measurement policy;
/// 5. **fidelity** — the successive-halving ladder, including the
///    coarse backend of [`FidelityMode::Backend`] (which stays
///    *undecorated*: the cheap model is deterministic even when the
///    primary backend rehearses faults or noise);
/// 6. **cache** — private, capped, shared, or disabled.
///
/// ```
/// use spotlight_eval::{Aggregation, EvalEngine, RobustPolicy};
/// let engine = EvalEngine::builder()
///     .backend("sim")
///     .robust(RobustPolicy::replicated(3, Aggregation::Median))
///     .cache_cap(1024)
///     .build()
///     .unwrap();
/// assert_eq!(engine.backend_name(), "sim");
/// ```
///
/// Contradictory requests (a cache cap on a disabled cache, a fidelity
/// ladder that cheapens into the primary backend, a replicate ladder
/// with nothing to cut) fail with a typed [`BuildError`].
pub struct EvalEngineBuilder {
    backend_name: String,
    custom: Option<Box<dyn CostBackend>>,
    faults: Option<FaultPlan>,
    noise: Option<NoisePlan>,
    robust: RobustPolicy,
    fidelity: Option<FidelitySpec>,
    cache: CacheChoice,
    cache_set: bool,
    retry: RetryPolicy,
    global: Option<Arc<GlobalEvalStats>>,
    /// First conflict detected while composing; reported by `build`.
    deferred: Option<BuildError>,
}

impl Default for EvalEngineBuilder {
    fn default() -> Self {
        EvalEngineBuilder::new()
    }
}

impl EvalEngineBuilder {
    /// A builder for the default analytical (maestro) engine.
    pub fn new() -> Self {
        EvalEngineBuilder {
            backend_name: "maestro".to_string(),
            custom: None,
            faults: None,
            noise: None,
            robust: RobustPolicy::default(),
            fidelity: None,
            cache: CacheChoice::Private,
            cache_set: false,
            retry: RetryPolicy::default(),
            global: None,
            deferred: None,
        }
    }

    /// Selects the backend by name (see [`BACKEND_NAMES`]); resolution
    /// errors surface from [`EvalEngineBuilder::build`].
    pub fn backend(mut self, name: &str) -> Self {
        self.backend_name = name.to_string();
        self
    }

    /// Uses an explicit backend instance instead of a named one.
    pub fn custom_backend(mut self, backend: Box<dyn CostBackend>) -> Self {
        self.custom = Some(backend);
        self
    }

    /// Injects faults from the plan; `None` keeps the backend clean.
    pub fn faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Injects measurement noise from the plan; `None` stays noiseless.
    pub fn noise(mut self, plan: Option<NoisePlan>) -> Self {
        self.noise = plan;
        self
    }

    /// Replaces the replicated-measurement policy.
    pub fn robust(mut self, robust: RobustPolicy) -> Self {
        self.robust = robust;
        self
    }

    /// Attaches a multi-fidelity ladder; `None` keeps the engine
    /// single-fidelity.
    pub fn fidelity(mut self, spec: Option<FidelitySpec>) -> Self {
        self.fidelity = spec;
        self
    }

    /// Bounds the private memo cache to `cap` entries (FIFO eviction).
    pub fn cache_cap(mut self, cap: usize) -> Self {
        self = self.note_cache_choice();
        self.cache = CacheChoice::Capped(cap);
        self
    }

    /// Attaches a [`SharedCache`] instead of a private one. Only sound
    /// between engines with identical evaluation semantics (see
    /// [`SharedCache`]).
    pub fn shared_cache(mut self, shared: &SharedCache) -> Self {
        self = self.note_cache_choice();
        self.cache = CacheChoice::Shared(shared.clone());
        self
    }

    /// Disables memoization entirely.
    pub fn no_cache(mut self) -> Self {
        self = self.note_cache_choice();
        self.cache = CacheChoice::Disabled;
        self
    }

    fn note_cache_choice(mut self) -> Self {
        if self.cache_set && self.deferred.is_none() {
            self.deferred = Some(BuildError::InvalidCombination {
                message: "more than one cache choice \
                          (cache_cap / shared_cache / no_cache are exclusive)"
                    .to_string(),
            });
        }
        self.cache_set = true;
        self
    }

    /// Replaces the transient-retry schedule.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a process-wide [`GlobalEvalStats`] mirror.
    pub fn global_stats(mut self, global: Arc<GlobalEvalStats>) -> Self {
        self.global = Some(global);
        self
    }

    /// Assembles the engine in the canonical composition order.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownBackend`] when a backend name (primary or
    /// the fidelity ladder's cheap backend) does not resolve;
    /// [`BuildError::InvalidCombination`] when the pieces contradict
    /// each other — two cache choices, a [`FidelityMode::Backend`]
    /// ladder whose cheap backend *is* the primary backend, or a
    /// [`FidelityMode::Replicate`] ladder on a single-shot robust
    /// policy (no replicates to cut).
    pub fn build(self) -> Result<EvalEngine, BuildError> {
        let invalid = |message: &str| BuildError::InvalidCombination {
            message: message.to_string(),
        };
        if let Some(err) = self.deferred {
            return Err(err);
        }
        let mut backend = match self.custom {
            Some(custom) => custom,
            None => backend_by_name(&self.backend_name)?,
        };
        let primary_name = backend.name();
        if let Some(plan) = self.faults {
            backend = Box::new(FaultInjectingBackend::new(backend, plan));
        }
        if let Some(plan) = self.noise {
            backend = Box::new(NoisyBackend::new(backend, plan));
        }
        let cheap_backend = match &self.fidelity {
            Some(spec) if spec.mode == FidelityMode::Backend => {
                if spec.cheap_backend == primary_name {
                    return Err(invalid(
                        "fidelity ladder's cheap backend is the primary backend; \
                         a backend-mode ladder needs a genuinely coarser model",
                    ));
                }
                Some(backend_by_name(&spec.cheap_backend)?)
            }
            _ => None,
        };
        if let Some(spec) = &self.fidelity {
            if spec.mode == FidelityMode::Replicate && self.robust.replicates <= 1 {
                return Err(invalid(
                    "replicate-mode fidelity ladder on a single-shot robust policy; \
                     set replicates > 1 so cheap rungs have something to cut",
                ));
            }
        }
        let mut engine = EvalEngine::new(backend);
        engine.robust = self.robust;
        engine.retry = self.retry;
        engine.fidelity = self.fidelity;
        engine.cheap_backend = cheap_backend;
        match self.cache {
            CacheChoice::Private => {}
            CacheChoice::Capped(cap) => {
                engine.cache = Some(Arc::new(Mutex::new(MemoCache::new(Some(cap)))));
            }
            CacheChoice::Shared(shared) => {
                engine.cache = Some(shared.inner.clone());
            }
            CacheChoice::Disabled => {
                engine.cache = None;
            }
        }
        if let Some(global) = self.global {
            engine.global = Some(global);
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlight_accel::DataflowStyle;
    use spotlight_space::dataflows::dataflow_schedule;
    use spotlight_space::{Schedule as Sched, TileSizes};

    fn triple() -> (HardwareConfig, Schedule, ConvLayer) {
        let hw = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
        let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
        let sched = dataflow_schedule(DataflowStyle::WeightStationary, &layer, &hw);
        (hw, sched, layer)
    }

    #[test]
    fn maestro_backend_matches_direct_model() {
        let (hw, sched, layer) = triple();
        let engine = EvalEngine::maestro();
        let via_engine = engine.evaluate(&hw, &sched, &layer).unwrap();
        let direct = CostModel::default().evaluate(&hw, &sched, &layer).unwrap();
        assert_eq!(via_engine, direct);
    }

    #[test]
    fn cache_returns_identical_results_and_counts_hits() {
        let (hw, sched, layer) = triple();
        let engine = EvalEngine::maestro();
        let a = engine.evaluate(&hw, &sched, &layer);
        let b = engine.evaluate(&hw, &sched, &layer);
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(engine.cache_len(), 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_still_counts_logical_queries() {
        let (hw, sched, layer) = triple();
        let engine = EvalEngine::maestro().without_cache();
        let a = engine.evaluate(&hw, &sched, &layer);
        let b = engine.evaluate(&hw, &sched, &layer);
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 2);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn infeasible_counter_tracks_errors_even_when_cached() {
        // The whole layer as one RF tile overflows any edge register file.
        let (hw, _, layer) = triple();
        let sched = Sched::trivial(&layer).with_tiles(TileSizes::whole_layer(&layer));
        let engine = EvalEngine::maestro();
        assert!(engine.evaluate(&hw, &sched, &layer).is_err());
        assert!(engine.evaluate(&hw, &sched, &layer).is_err());
        let stats = engine.stats();
        assert_eq!(stats.infeasible, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn sim_backend_falls_back_on_too_large_nests() {
        let (hw, sched, layer) = triple();
        // Cap of zero iterations forces TooLarge on every nest.
        let capped = SimBackend::new(CostModel::default(), 0);
        let analytical = CostModel::default().evaluate(&hw, &sched, &layer).unwrap();
        assert_eq!(capped.evaluate(&hw, &sched, &layer).unwrap(), analytical);

        // With a generous cap the simulated delay takes over.
        let sim = SimBackend::default();
        let r = sim.evaluate(&hw, &sched, &layer).unwrap();
        assert_eq!(r.energy_nj, analytical.energy_nj);
        assert_eq!(r.area_mm2, analytical.area_mm2);
        assert!(r.delay_cycles.is_finite() && r.delay_cycles > 0.0);
    }

    #[test]
    fn timeloop_backend_reports_edp_fields() {
        // The unit-tile trivial schedule always passes the stricter
        // double-buffered capacity checks.
        let (hw, _, layer) = triple();
        let sched = Sched::trivial(&layer);
        let engine = EvalEngine::timeloop();
        let r = engine.evaluate(&hw, &sched, &layer).unwrap();
        let direct = TimeloopModel::default()
            .evaluate(&hw, &sched, &layer)
            .unwrap();
        assert_eq!(r.delay_cycles, direct.delay_cycles);
        assert_eq!(r.energy_nj, direct.energy_nj);
        assert_eq!(r.dram_bytes, direct.dram_bytes);
    }

    #[test]
    fn by_name_resolves_all_backends() {
        for name in BACKEND_NAMES {
            assert_eq!(EvalEngine::by_name(name).unwrap().backend_name(), name);
        }
        let err = EvalEngine::by_name("abacus").unwrap_err();
        assert_eq!(err.requested, "abacus");
        for name in BACKEND_NAMES {
            assert!(err.to_string().contains(name), "{err}");
        }
    }

    #[test]
    fn observed_evaluation_attributes_to_span() {
        use spotlight_obs::MemorySink;
        use std::sync::Arc;

        let (hw, sched, layer) = triple();
        let engine = EvalEngine::maestro();
        let sink = Arc::new(MemorySink::new());
        let obs = Observer::new(sink.clone()).with_hw_sample(2).with_layer(1);
        let ok = engine.evaluate_observed(&hw, &sched, &layer, &obs, 0);
        assert!(ok.is_ok());
        let bad = Sched::trivial(&layer).with_tiles(TileSizes::whole_layer(&layer));
        assert!(engine
            .evaluate_observed(&hw, &bad, &layer, &obs, 1)
            .is_err());
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].span_key(), (Some(2), Some(1)));
        assert!(matches!(
            recs[0].event,
            Event::ScheduleEvaluated { step: 0, .. }
        ));
        match &recs[1].event {
            Event::Infeasible { step: 1, reason } => assert!(!reason.is_empty()),
            other => panic!("expected infeasible, got {other:?}"),
        }
        // Observed evaluation is counted exactly like the plain one.
        assert_eq!(engine.stats().evaluations, 2);
    }

    #[test]
    fn phase_timer_accumulates_and_reset_clears() {
        let engine = EvalEngine::maestro();
        let v = engine.time_phase("sw_search", || 7);
        assert_eq!(v, 7);
        engine.time_phase("sw_search", || ());
        engine.count_sw_search();
        let stats = engine.stats();
        assert_eq!(stats.sw_searches, 1);
        assert_eq!(stats.phase_wall.len(), 1);
        assert_eq!(stats.phase_wall[0].0, "sw_search");
        engine.reset_stats();
        let stats = engine.stats();
        assert_eq!(stats, EvalStats::default());
    }

    #[test]
    fn add_phase_wall_folds_external_timers_in() {
        let engine = EvalEngine::maestro();
        engine.add_phase_wall("surrogate_fit", Duration::from_millis(3));
        engine.add_phase_wall("acquisition", Duration::from_millis(2));
        engine.add_phase_wall("surrogate_fit", Duration::from_millis(1));
        let stats = engine.stats();
        // BTreeMap order: acquisition before surrogate_fit.
        assert_eq!(
            stats.phase_wall,
            vec![
                ("acquisition".to_string(), Duration::from_millis(2)),
                ("surrogate_fit".to_string(), Duration::from_millis(4)),
            ]
        );
    }

    /// Backend whose first `fail_calls` invocations fail transiently.
    struct FlakyBackend {
        fail_calls: u64,
        calls: AtomicU64,
        inner: MaestroBackend,
    }

    impl FlakyBackend {
        fn new(fail_calls: u64) -> Self {
            FlakyBackend {
                fail_calls,
                calls: AtomicU64::new(0),
                inner: MaestroBackend::default(),
            }
        }
    }

    impl CostBackend for FlakyBackend {
        fn name(&self) -> &'static str {
            "maestro"
        }

        fn evaluate(
            &self,
            hw: &HardwareConfig,
            sched: &Schedule,
            layer: &ConvLayer,
        ) -> Result<CostReport, EvalError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fail_calls {
                return Err(EvalError::Transient);
            }
            self.inner.evaluate(hw, sched, layer)
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    #[test]
    fn transient_failures_are_retried_inline() {
        let (hw, sched, layer) = triple();
        let engine =
            EvalEngine::new(Box::new(FlakyBackend::new(2))).with_retry_policy(fast_retry());
        // Two transient failures, then success, all within one query.
        assert!(engine.evaluate(&hw, &sched, &layer).is_ok());
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.transient_retries, 2);
        assert_eq!(stats.quarantined, 0);
        // The successful result was cached normally.
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn exhausted_retries_quarantine_the_key() {
        let (hw, sched, layer) = triple();
        let engine =
            EvalEngine::new(Box::new(FlakyBackend::new(u64::MAX))).with_retry_policy(fast_retry());
        assert_eq!(
            engine.evaluate(&hw, &sched, &layer),
            Err(EvalError::Transient)
        );
        // The key is now quarantined: the backend is not consulted again.
        assert_eq!(
            engine.evaluate(&hw, &sched, &layer),
            Err(EvalError::Quarantined)
        );
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 2);
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.infeasible, 0);
        assert_eq!(stats.transient_retries, 2);
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.evaluations);
        assert_eq!(engine.quarantine_len(), 1);
        // Transient results are never memoized.
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn poisoned_reports_are_sanitized_and_quarantined() {
        struct PoisonBackend;
        impl CostBackend for PoisonBackend {
            fn name(&self) -> &'static str {
                "maestro"
            }
            fn evaluate(
                &self,
                _: &HardwareConfig,
                _: &Schedule,
                _: &ConvLayer,
            ) -> Result<CostReport, EvalError> {
                Ok(CostReport::zeroed_for_tests(f64::NAN, 1.0))
            }
        }
        let (hw, sched, layer) = triple();
        let engine = EvalEngine::new(Box::new(PoisonBackend)).with_retry_policy(fast_retry());
        assert_eq!(
            engine.evaluate(&hw, &sched, &layer),
            Err(EvalError::Poisoned)
        );
        assert_eq!(
            engine.evaluate(&hw, &sched, &layer),
            Err(EvalError::Quarantined)
        );
        let stats = engine.stats();
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.infeasible, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.evaluations);
    }

    #[test]
    fn restored_counters_feed_the_next_snapshot() {
        let engine = EvalEngine::maestro();
        engine.restore_logical_counters(10, 2, 3, 1, 1, 4);
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 10);
        assert_eq!(stats.sw_searches, 2);
        assert_eq!(stats.infeasible, 3);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.failed_layers, 1);
        assert_eq!(stats.outliers_rejected, 4);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn retry_backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(1), Duration::from_millis(1));
        assert_eq!(policy.backoff(2), Duration::from_millis(2));
        assert_eq!(policy.backoff(3), Duration::from_millis(4));
        assert_eq!(policy.backoff(10), Duration::from_millis(4));
    }

    #[test]
    fn engine_is_shareable_across_scoped_threads() {
        let (hw, sched, layer) = triple();
        let engine = EvalEngine::maestro();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| engine.evaluate(&hw, &sched, &layer).unwrap());
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 4);
        assert_eq!(engine.cache_len(), 1);
        assert_eq!(stats.cache_hits + stats.cache_misses, 4);
    }

    /// A distinct (hw, sched, layer) key per input size, for cache tests.
    fn keyed_triple(size: u64) -> (HardwareConfig, Schedule, ConvLayer) {
        let hw = HardwareConfig::new(256, 16, 2, 128, 256, 128).unwrap();
        let layer = ConvLayer::new(1, 64, 32, 3, 3, size, size);
        let sched = dataflow_schedule(DataflowStyle::WeightStationary, &layer, &hw);
        (hw, sched, layer)
    }

    #[test]
    fn default_policy_measures_once_with_single_summary() {
        let (hw, sched, layer) = triple();
        let engine = EvalEngine::maestro();
        let (report, summary) = engine.evaluate_robust(&hw, &sched, &layer).unwrap();
        assert_eq!(summary, ReplicateSummary::single());
        assert_eq!(report, engine.evaluate(&hw, &sched, &layer).unwrap());
        let stats = engine.stats();
        // Replication counters stay untouched on the single-shot path.
        assert_eq!(stats.replicate_measurements, 0);
        assert_eq!(stats.outliers_rejected, 0);
    }

    #[test]
    fn replicated_noisy_measurement_aggregates_and_is_reproducible() {
        let (hw, sched, layer) = triple();
        let plan: NoisePlan = "seed=7,model=gauss,sigma=0.1".parse().unwrap();
        let make = || {
            EvalEngine::builder()
                .noise(Some(plan))
                .robust(RobustPolicy::replicated(5, Aggregation::Median))
                .build()
                .unwrap()
        };
        let engine = make();
        let (report, summary) = engine.evaluate_robust(&hw, &sched, &layer).unwrap();
        let clean = CostModel::default().evaluate(&hw, &sched, &layer).unwrap();
        // The median of five replicates lands near the clean value but
        // (with sigma=0.1) not exactly on it.
        assert!((report.delay_cycles / clean.delay_cycles - 1.0).abs() < 0.2);
        assert_ne!(report.delay_cycles, clean.delay_cycles);
        assert!(summary.measurements >= 5);
        assert!(summary.dispersion > 0.0);
        assert_eq!(engine.stats().replicate_measurements, summary.measurements);
        // A fresh engine with the same plan reproduces the measurement
        // bit-for-bit: replicate ordinals restart per engine.
        let again = make().evaluate_robust(&hw, &sched, &layer).unwrap();
        assert_eq!(again, (report, summary));
        // And a cache hit replays the identical summary.
        assert_eq!(
            engine.evaluate_robust(&hw, &sched, &layer).unwrap(),
            (report, summary)
        );
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn heavy_noise_outliers_are_rejected_and_counted() {
        let plan: NoisePlan = "seed=11,model=heavy,sigma=0.05".parse().unwrap();
        let engine = EvalEngine::builder()
            .noise(Some(plan))
            .robust(RobustPolicy::replicated(7, Aggregation::Median))
            .build()
            .unwrap();
        // Enough distinct points that the Cauchy tail is certain (for
        // this seed) to plant gross outliers in some replicate set.
        for size in 8..40 {
            let (hw, sched, layer) = keyed_triple(size);
            engine.evaluate(&hw, &sched, &layer).unwrap();
        }
        let stats = engine.stats();
        assert!(stats.outliers_rejected > 0, "{stats:?}");
        // Rejected replicates were replaced within the re-measure budget.
        assert!(stats.replicate_measurements >= 32 * 7 + stats.outliers_rejected / 2);
    }

    #[test]
    fn bounded_cache_evicts_in_insertion_order() {
        let engine = EvalEngine::builder().cache_cap(2).build().unwrap();
        let keys: Vec<_> = [24, 26, 28].iter().map(|&s| keyed_triple(s)).collect();
        for (hw, sched, layer) in &keys {
            engine.evaluate(hw, sched, layer).unwrap();
        }
        assert_eq!(engine.cache_len(), 2);
        assert_eq!(engine.stats().evictions, 1);
        // The newest key is still memoized...
        let (hw, sched, layer) = &keys[2];
        engine.evaluate(hw, sched, layer).unwrap();
        assert_eq!(engine.stats().cache_hits, 1);
        // ...while the oldest was evicted and recomputes as a miss.
        let (hw, sched, layer) = &keys[0];
        engine.evaluate(hw, sched, layer).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(engine.cache_len(), 2);
    }

    #[test]
    fn expired_deadline_abandons_retry_backoff() {
        let (hw, sched, layer) = triple();
        let engine =
            EvalEngine::new(Box::new(FlakyBackend::new(2))).with_retry_policy(fast_retry());
        engine.set_deadline(Some(Instant::now()));
        // The first transient failure would normally retry; with the
        // deadline already passed the engine gives up immediately.
        assert_eq!(
            engine.evaluate(&hw, &sched, &layer),
            Err(EvalError::Transient)
        );
        assert_eq!(engine.stats().transient_retries, 0);
        // Clearing the deadline restores inline retries (fresh key so
        // the quarantine from the abandoned attempt doesn't shortcut).
        engine.set_deadline(None);
        let (hw2, sched2, layer2) = keyed_triple(20);
        assert!(engine.evaluate(&hw2, &sched2, &layer2).is_ok());
        assert_eq!(engine.stats().transient_retries, 1);
    }

    #[test]
    fn backoff_sleeps_are_clamped_to_the_remaining_deadline() {
        // Regression: with a huge backoff and a nearly-spent deadline,
        // the retry sleep must be clamped to the remaining budget
        // instead of sleeping the full backoff past the deadline.
        let (hw, sched, layer) = triple();
        let engine =
            EvalEngine::new(Box::new(FlakyBackend::new(1))).with_retry_policy(RetryPolicy {
                max_attempts: 3,
                base: Duration::from_secs(60),
                cap: Duration::from_secs(60),
            });
        engine.set_deadline(Some(Instant::now() + Duration::from_millis(30)));
        let start = Instant::now();
        assert!(engine.evaluate(&hw, &sched, &layer).is_ok());
        // The single retry slept the clamped remainder, not the 60s base.
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(engine.stats().transient_retries, 1);
    }

    #[test]
    fn builder_composes_in_canonical_order() {
        let faults: FaultPlan = "seed=3,latency=0".parse().unwrap();
        let noise: NoisePlan = "seed=7,model=gauss,sigma=0.05".parse().unwrap();
        let engine = EvalEngine::builder()
            .backend("sim")
            .faults(Some(faults))
            .noise(Some(noise))
            .robust(RobustPolicy::replicated(3, Aggregation::Median))
            .cache_cap(64)
            .build()
            .unwrap();
        // The decorators surface their specs; the name stays the real
        // backend's.
        assert_eq!(engine.backend_name(), "sim");
        assert_eq!(engine.faults().as_deref(), Some(&faults.to_string()[..]));
        assert_eq!(engine.noise().as_deref(), Some(&noise.to_string()[..]));
        assert_eq!(engine.robust_policy().replicates, 3);
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        // Unknown primary backend.
        assert!(matches!(
            EvalEngine::builder().backend("verilator").build(),
            Err(BuildError::UnknownBackend(_))
        ));
        // Two cache choices.
        let err = EvalEngine::builder().cache_cap(2).no_cache().build();
        assert!(
            matches!(&err, Err(BuildError::InvalidCombination { message })
                if message.contains("cache")),
            "{err:?}"
        );
        // Backend-mode ladder whose cheap backend is the primary.
        let spec: FidelitySpec = "fidelity=backend:maestro".parse().unwrap();
        let err = EvalEngine::builder().fidelity(Some(spec)).build();
        assert!(
            matches!(&err, Err(BuildError::InvalidCombination { message })
                if message.contains("primary backend")),
            "{err:?}"
        );
        // Replicate-mode ladder with nothing to cut.
        let spec: FidelitySpec = "fidelity=replicate:0.25".parse().unwrap();
        let err = EvalEngine::builder().fidelity(Some(spec)).build();
        assert!(
            matches!(&err, Err(BuildError::InvalidCombination { message })
                if message.contains("single-shot")),
            "{err:?}"
        );
    }

    #[test]
    fn fidelity_keyed_cache_never_aliases_cheap_and_full() {
        // The unit-tile trivial schedule is feasible under both the
        // maestro and the stricter timeloop capacity checks.
        let (hw, _, layer) = triple();
        let sched = Sched::trivial(&layer);
        let spec: FidelitySpec = "fidelity=backend:timeloop".parse().unwrap();
        let engine = EvalEngine::builder().fidelity(Some(spec)).build().unwrap();
        let cheap = engine
            .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Rung(0))
            .unwrap();
        let full = engine
            .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Full)
            .unwrap();
        // The coarse backend reports different numbers with inflated
        // dispersion; both live in the cache under distinct keys.
        assert_ne!(cheap.0.delay_cycles, full.0.delay_cycles);
        assert!(cheap.1.dispersion > 0.0);
        assert_eq!(full.1.dispersion, 0.0);
        assert_eq!(engine.cache_len(), 2);
        // Replays hit their own fidelity's entry bit-for-bit.
        assert_eq!(
            engine
                .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Rung(0))
                .unwrap(),
            cheap
        );
        assert_eq!(
            engine
                .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Full)
                .unwrap(),
            full
        );
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.fidelity_cheap_evals, 2);
        assert_eq!(stats.fidelity_full_evals, 2);
    }

    #[test]
    fn replicate_ladder_cuts_measurements_and_inflates_dispersion() {
        let (hw, sched, layer) = triple();
        let noise: NoisePlan = "seed=7,model=gauss,sigma=0.1".parse().unwrap();
        let spec: FidelitySpec = "fidelity=replicate:0.2,rungs=3".parse().unwrap();
        let inflation = spec.variance_inflation(0);
        let engine = EvalEngine::builder()
            .noise(Some(noise))
            .robust(RobustPolicy::replicated(5, Aggregation::Median))
            .fidelity(Some(spec))
            .build()
            .unwrap();
        // Rung 0 of a 0.2-fraction ladder takes a single measurement...
        let (_, cheap) = engine
            .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Rung(0))
            .unwrap();
        assert_eq!(engine.stats().replicate_measurements, 0);
        // ...and its dispersion still carries the rung's inflation.
        assert!((cheap.dispersion * cheap.dispersion - inflation).abs() < 1e-9);
        // Full fidelity takes all five.
        let (_, full) = engine
            .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Full)
            .unwrap();
        assert!(engine.stats().replicate_measurements >= 5);
        assert!(full.measurements >= 5);
        assert!(full.dispersion < cheap.dispersion);
    }

    #[test]
    fn full_fidelity_without_a_spec_matches_the_historical_path() {
        let (hw, sched, layer) = triple();
        let plain = EvalEngine::maestro();
        let tagged = plain
            .evaluate_at_robust(&hw, &sched, &layer, Fidelity::Full)
            .unwrap();
        assert_eq!(tagged, plain.evaluate_robust(&hw, &sched, &layer).unwrap());
        // Without a spec the fidelity counters stay untouched.
        let stats = plain.stats();
        assert_eq!(stats.fidelity_cheap_evals, 0);
        assert_eq!(stats.fidelity_full_evals, 0);
    }
}
