//! Minimal dense linear algebra.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix, sized for the small systems Bayesian
/// optimization solves (tens to a few hundred rows).
///
/// # Examples
///
/// ```
/// use spotlight_gp::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 4.0;
/// a[(1, 1)] = 9.0;
/// let l = a.cholesky().unwrap();
/// assert_eq!(l[(0, 0)], 2.0);
/// assert_eq!(l[(1, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Reshapes to `rows x cols` of zeros, reusing the existing allocation
    /// when it is large enough. This is the scratch-buffer primitive behind
    /// the zero-allocation batched predict path.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Lower-triangular Cholesky factor `L` with `L L^T = A`, or `None`
    /// when `A` is not positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Lower-triangular Cholesky factor with an escalating diagonal jitter
    /// ladder: tries the matrix as-is, then with `1e-10`, `1e-8` and `1e-6`
    /// added to the diagonal, before giving up. Returns the factor and the
    /// jitter that succeeded, so callers can report degradation.
    pub fn cholesky_with_jitter(&self) -> Option<(Matrix, f64)> {
        if let Some(l) = self.cholesky() {
            return Some((l, 0.0));
        }
        let mut jittered = self.clone();
        let mut added = 0.0;
        for &jitter in &[1e-10, 1e-8, 1e-6] {
            for i in 0..self.rows {
                jittered[(i, i)] += jitter - added;
            }
            added = jitter;
            if let Some(l) = jittered.cholesky() {
                return Some((l, jitter));
            }
        }
        None
    }

    /// Solves `L y = b` for lower-triangular `L` (forward substitution).
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, b.len(), "dimension mismatch");
        let n = self.rows;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self[(i, j)] * y[j];
            }
            y[i] = sum / self[(i, i)];
        }
        y
    }

    /// Solves `L^T x = y` for lower-triangular `L` (back substitution).
    pub fn backward_solve_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, y.len(), "dimension mismatch");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self[(j, i)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves the SPD system `A x = b` via Cholesky, returning `None` when
    /// `A` is not positive definite.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        let y = l.forward_solve(b);
        Some(l.backward_solve_transposed(&y))
    }

    /// Solves `L yᵢ = bᵢ` in place for every row `bᵢ` of `rhs` (blocked
    /// forward substitution over a candidate matrix).
    ///
    /// Rows of `rhs` are processed in blocks so each row of `L` is streamed
    /// once per block instead of once per candidate. Within one candidate
    /// the arithmetic order is exactly [`Matrix::forward_solve`]'s, so the
    /// result is bit-identical to solving each row individually.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.cols() != self.rows()` or `self` is not square.
    pub fn solve_triangular_batch(&self, rhs: &mut Matrix) {
        assert_eq!(self.rows, self.cols, "triangular solve needs square L");
        assert_eq!(rhs.cols, self.rows, "dimension mismatch");
        let n = self.rows;
        if n == 0 {
            return;
        }
        const BLOCK_ROWS: usize = 8;
        for block in rhs.data.chunks_mut(BLOCK_ROWS * n) {
            for i in 0..n {
                let l_row = &self.data[i * n..i * n + i];
                let diag = self.data[i * n + i];
                for row in block.chunks_mut(n) {
                    let mut sum = row[i];
                    for (j, &lij) in l_row.iter().enumerate() {
                        sum -= lij * row[j];
                    }
                    row[i] = sum / diag;
                }
            }
        }
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the natural starting state for a scratch
    /// buffer that [`Matrix::reset`] will size on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solves_trivially() {
        let i3 = Matrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(i3.solve_spd(&b).unwrap(), b);
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn reset_reuses_and_zeroes() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.reset(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert!(m.row(0).iter().chain(m.row(2)).all(|&v| v == 0.0));
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
    }

    #[test]
    fn cholesky_with_jitter_recovers_near_singular() {
        // Rank-deficient Gram matrix: plain Cholesky fails, jitter saves it.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(a.cholesky().is_none());
        let (l, jitter) = a.cholesky_with_jitter().expect("jitter ladder");
        assert!(jitter > 0.0 && jitter <= 1e-6);
        assert!(l[(0, 0)] > 0.0 && l[(1, 1)] > 0.0);
    }

    #[test]
    fn cholesky_with_jitter_leaves_pd_untouched() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let (l, jitter) = a.cholesky_with_jitter().unwrap();
        assert_eq!(jitter, 0.0);
        assert_eq!(l, a.cholesky().unwrap());
    }

    #[test]
    fn cholesky_with_jitter_gives_up_on_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(a.cholesky_with_jitter().is_none());
    }

    #[test]
    fn batch_solve_is_bit_identical_to_forward_solve() {
        // 20 candidates > one 8-row block, so blocking boundaries are hit.
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![2.0, 3.0, 0.25],
            vec![0.5, 0.25, 5.0],
        ]);
        let l = a.cholesky().unwrap();
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                vec![
                    i as f64 * 0.3 - 2.0,
                    (i * i) as f64 * 0.01,
                    1.0 / (i + 1) as f64,
                ]
            })
            .collect();
        let mut batch = Matrix::from_rows(&rows);
        l.solve_triangular_batch(&mut batch);
        for (i, row) in rows.iter().enumerate() {
            let single = l.forward_solve(row);
            for j in 0..3 {
                assert_eq!(batch[(i, j)], single[j], "row {i} col {j}");
            }
        }
    }

    #[test]
    fn display_has_all_entries() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn solve_spd_inverts(vals in proptest::collection::vec(-2.0f64..2.0, 12)) {
            // Build an SPD matrix A = B B^T + I from a random 3x4 B.
            let n = 3;
            let mut a = Matrix::identity(n);
            for i in 0..n {
                for j in 0..n {
                    let dot: f64 = (0..4).map(|k| vals[i * 4 + k] * vals[j * 4 + k]).sum();
                    a[(i, j)] += dot;
                }
            }
            let b = vec![1.0, -2.0, 0.5];
            let x = a.solve_spd(&b).expect("SPD by construction");
            let back = a.matvec(&x);
            for (bi, yi) in b.iter().zip(&back) {
                prop_assert!((bi - yi).abs() < 1e-8, "{bi} vs {yi}");
            }
        }
    }
}
