//! Rank statistics.
//!
//! Section VII-D evaluates the surrogate with the Spearman rank
//! correlation coefficient and a "top-20% hit rate"; both live here.

/// Average ranks of `v` (1-based, ties share the mean rank).
///
/// ```
/// use spotlight_gp::stats::ranks;
/// assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
/// assert_eq!(ranks(&[1.0, 1.0]), vec![1.5, 1.5]);
/// ```
pub fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation coefficient of two equal-length samples; 0 when
/// either is constant.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation coefficient: Pearson correlation of the
/// ranks. 1 means identical ordering, -1 inverse ordering.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// ```
/// use spotlight_gp::stats::spearman_rho;
/// // Any monotone transform gives rho = 1.
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    pearson(&ranks(a), &ranks(b))
}

/// Fraction of the true best `quantile` of `truth` (smallest values) that
/// also appear in the predicted best `quantile` of `pred` — the paper's
/// "roughly 24% of the top 20% of samples are correctly predicted".
///
/// # Panics
///
/// Panics if lengths differ, inputs are empty, or `quantile` is outside
/// `(0, 1]`.
pub fn top_quantile_hit_rate(truth: &[f64], pred: &[f64], quantile: f64) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty input");
    assert!(quantile > 0.0 && quantile <= 1.0, "quantile out of range");
    let k = ((truth.len() as f64 * quantile).ceil() as usize).max(1);
    let top = |v: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        idx.truncate(k);
        idx
    };
    let t = top(truth);
    let p = top(pred);
    let hits = t.iter().filter(|i| p.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn spearman_of_reversed_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rho(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_of_noise_near_zero() {
        // A deterministic "shuffled" sequence.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        assert!(spearman_rho(&a, &b).abs() < 0.3);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn hit_rate_perfect_prediction() {
        let t = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(top_quantile_hit_rate(&t, &t, 0.4), 1.0);
    }

    #[test]
    fn hit_rate_disjoint_prediction() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(top_quantile_hit_rate(&t, &p, 0.5), 0.0);
    }

    #[test]
    fn ranks_handle_all_ties() {
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    proptest! {
        #[test]
        fn spearman_in_unit_interval(
            a in proptest::collection::vec(-100.0f64..100.0, 3..40),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
            let rho = spearman_rho(&a, &b);
            prop_assert!(rho <= 1.0 + 1e-9);
            // Monotone transform preserves order exactly unless constant.
            if a.iter().any(|&x| x != a[0]) {
                prop_assert!((rho - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn ranks_are_permutation_of_1_to_n(
            a in proptest::collection::vec(-100.0f64..100.0, 1..30),
        ) {
            let r = ranks(&a);
            let sum: f64 = r.iter().sum();
            let n = a.len() as f64;
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        }

        #[test]
        fn hit_rate_bounded(
            a in proptest::collection::vec(-10.0f64..10.0, 5..30),
            b in proptest::collection::vec(-10.0f64..10.0, 5..30),
        ) {
            let n = a.len().min(b.len());
            let r = top_quantile_hit_rate(&a[..n], &b[..n], 0.2);
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }
}
