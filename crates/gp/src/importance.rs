//! Permutation feature importance (Figure 9).
//!
//! "After the GP is trained, we randomly perturb each feature in turn and
//! measure the resulting change in the surrogate model's prediction.
//! Features that cause large changes are considered to be more
//! important." (Section VII-D, following Altmann et al. and Breiman.)

use rand::seq::SliceRandom;
use rand::Rng;

use crate::Surrogate;

/// Computes permutation importance of each feature of `xs` under the
/// fitted surrogate `model`.
///
/// For each feature column, the column's values are shuffled across the
/// evaluation set and the mean absolute change in the model's prediction
/// is recorded; the result is normalized so the importances sum to 1
/// (matching Figure 9's "relative importance ... normalized for each
/// model"). All-zero changes return a uniform vector.
///
/// # Panics
///
/// Panics if `xs` is empty or ragged.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use spotlight_gp::{permutation_importance, BayesianLinearModel, Surrogate};
///
/// // y depends strongly on feature 0, not at all on feature 1.
/// let xs: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![(i % 8) as f64, ((i * 13) % 5) as f64])
///     .collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 10.0 * x[0]).collect();
/// let mut m = BayesianLinearModel::new(10.0, 1e-3);
/// m.fit(&xs, &ys).unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let imp = permutation_importance(&m, &xs, &mut rng);
/// assert!(imp[0] > 0.9);
/// ```
pub fn permutation_importance<S: Surrogate + ?Sized, R: Rng + ?Sized>(
    model: &S,
    xs: &[Vec<f64>],
    rng: &mut R,
) -> Vec<f64> {
    assert!(!xs.is_empty(), "empty evaluation set");
    let d = xs[0].len();
    assert!(xs.iter().all(|x| x.len() == d), "ragged evaluation set");

    let baseline: Vec<f64> = xs.iter().map(|x| model.predict(x).0).collect();
    let mut raw = vec![0.0; d];
    for (f, slot) in raw.iter_mut().enumerate() {
        // Shuffle this feature's column.
        let mut column: Vec<f64> = xs.iter().map(|x| x[f]).collect();
        column.shuffle(rng);
        let mut delta = 0.0;
        for (i, x) in xs.iter().enumerate() {
            let mut perturbed = x.clone();
            perturbed[f] = column[i];
            delta += (model.predict(&perturbed).0 - baseline[i]).abs();
        }
        *slot = delta / xs.len() as f64;
    }
    let total: f64 = raw.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / d as f64; d];
    }
    raw.into_iter().map(|v| v / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::GaussianProcess;
    use crate::kernel::Kernel;
    use crate::linear::BayesianLinearModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64, ((i * 7) % 6) as f64, ((i * 3) % 4) as f64])
            .collect();
        // Feature 0 dominant, feature 2 moderate, feature 1 irrelevant.
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0] + 0.5 * x[2]).collect();
        (xs, ys)
    }

    #[test]
    fn importances_sum_to_one() {
        let (xs, ys) = dataset();
        let mut m = BayesianLinearModel::new(10.0, 1e-3);
        m.fit(&xs, &ys).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let imp = permutation_importance(&m, &xs, &mut rng);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_feature_ranks_first() {
        let (xs, ys) = dataset();
        let mut m = GaussianProcess::new(Kernel::linear(), 1e-4);
        m.fit(&xs, &ys).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let imp = permutation_importance(&m, &xs, &mut rng);
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "{imp:?}");
        assert!(imp[2] > imp[1], "{imp:?}");
    }

    #[test]
    fn constant_model_gives_uniform_importance() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let ys = vec![7.0, 7.0, 7.0];
        let mut m = BayesianLinearModel::new(1e-6, 1.0); // tight prior: ~constant
        m.fit(&xs, &ys).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let imp = permutation_importance(&m, &xs, &mut rng);
        assert_eq!(imp.len(), 2);
        // Nearly uniform: no feature dominates a constant predictor.
        assert!((imp[0] - imp[1]).abs() < 0.5);
    }
}
