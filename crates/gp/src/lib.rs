#![warn(missing_docs)]

//! Gaussian-process machinery for daBO.
//!
//! Bayesian optimization needs a probabilistic surrogate model
//! (Section V-A). This crate implements everything from scratch on dense
//! `f64` linear algebra:
//!
//! - [`Matrix`]: a small row-major matrix with Cholesky factorization and
//!   SPD solves,
//! - [`kernel`]: the Linear, RBF and Matérn-5/2 covariance functions the
//!   paper discusses (daBO uses the linear kernel; the Matérn comparison
//!   is Section VII-D),
//! - [`GaussianProcess`]: kernelized GP regression with posterior mean and
//!   variance,
//! - [`BayesianLinearModel`]: the weight-space view of the linear-kernel
//!   GP, with the `O(N·d^2)` fitting cost behind the paper's "linear
//!   kernel ... has O(N) complexity" efficiency claim,
//! - [`stats`]: Spearman rank correlation (the Section VII-D surrogate
//!   accuracy metric) and friends,
//! - [`importance`]: permutation importance (Figure 9).
//!
//! # Examples
//!
//! ```
//! use spotlight_gp::{kernel::Kernel, GaussianProcess, Surrogate};
//!
//! // Fit y = 2 x and check the GP interpolates.
//! let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
//! let mut gp = GaussianProcess::new(Kernel::linear(), 1e-6);
//! gp.fit(&xs, &ys).unwrap();
//! let (mean, _std) = gp.predict(&[5.0]);
//! assert!((mean - 10.0).abs() < 0.1);
//! ```

pub mod gaussian;
pub mod importance;
pub mod kernel;
pub mod linear;
pub mod matrix;
pub mod stats;
pub mod tuning;

pub use gaussian::GaussianProcess;
pub use importance::permutation_importance;
pub use kernel::Kernel;
pub use linear::BayesianLinearModel;
pub use matrix::Matrix;

/// Reusable scratch buffers for [`Surrogate::predict_batch_into`].
///
/// Holds the candidate working matrix between calls so the acquisition
/// hot path allocates nothing in steady state: [`Matrix::reset`] reuses
/// the backing `Vec` once it has grown to the batch size.
#[derive(Debug, Default, Clone)]
pub struct PredictScratch {
    /// Batch working storage (augmented features / kernel rows, then the
    /// in-place triangular-solve result). Sized by the implementation.
    pub work: Matrix,
}

/// A probabilistic regression surrogate: fits `(x, y)` pairs and predicts
/// a posterior mean and standard deviation at new points.
///
/// Implemented by [`GaussianProcess`] (any kernel, `O(N^3)` fit) and
/// [`BayesianLinearModel`] (linear kernel only, `O(N d^2)` fit).
pub trait Surrogate {
    /// Fits the surrogate to the observations.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when the observations are empty, ragged, or
    /// produce a non-positive-definite system.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError>;

    /// Posterior `(mean, standard deviation)` at `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a successful
    /// [`Surrogate::fit`] or with a feature vector of the wrong length.
    fn predict(&self, x: &[f64]) -> (f64, f64);

    /// Batched posterior prediction: fills `means[i]` and `stds[i]` for
    /// every row `i` of `x` (one candidate feature vector per row).
    ///
    /// `scratch` is caller-owned working storage; reusing it across calls
    /// makes the steady-state batch allocation-free. Implementations must
    /// produce results bit-identical to calling [`Surrogate::predict`] per
    /// row — the default does exactly that; [`BayesianLinearModel`] and
    /// [`GaussianProcess`] override it with one blocked triangular solve
    /// over the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `means` or `stds` are shorter than `x.rows()`, or under
    /// the same conditions as [`Surrogate::predict`].
    fn predict_batch_into(
        &self,
        x: &Matrix,
        scratch: &mut PredictScratch,
        means: &mut [f64],
        stds: &mut [f64],
    ) {
        let _ = scratch;
        assert!(means.len() >= x.rows() && stds.len() >= x.rows());
        for i in 0..x.rows() {
            let (m, s) = self.predict(x.row(i));
            means[i] = m;
            stds[i] = s;
        }
    }
}

/// Error returned when fitting a surrogate fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No observations were supplied.
    Empty,
    /// `x` and `y` lengths differ, or feature vectors are ragged.
    ShapeMismatch,
    /// The covariance system was not positive definite even after jitter.
    NotPositiveDefinite,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Empty => f.write_str("no training observations"),
            FitError::ShapeMismatch => f.write_str("mismatched observation shapes"),
            FitError::NotPositiveDefinite => {
                f.write_str("covariance matrix is not positive definite")
            }
        }
    }
}

impl std::error::Error for FitError {}
