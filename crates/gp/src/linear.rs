//! Weight-space Bayesian linear regression — the linear-kernel GP
//! computed efficiently.

use crate::matrix::Matrix;
use crate::{FitError, PredictScratch, Surrogate};

/// Bayesian linear regression with a Gaussian prior on the weights.
///
/// Mathematically identical to a [`crate::GaussianProcess`] with
/// [`crate::Kernel::linear`], but fit in weight space: the posterior over
/// the `d`-dimensional weight vector costs `O(N d^2 + d^3)` instead of
/// `O(N^3)` — the efficiency behind the paper's linear-kernel choice
/// (Section V-A) and the reason daBO scales to large candidate batches.
///
/// An intercept feature is appended automatically.
///
/// # Examples
///
/// ```
/// use spotlight_gp::{BayesianLinearModel, Surrogate};
///
/// let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 4.0 - 0.5 * x[0]).collect();
/// let mut blm = BayesianLinearModel::new(100.0, 1e-4);
/// blm.fit(&xs, &ys).unwrap();
/// let (mean, std) = blm.predict(&[40.0]);
/// assert!((mean - (4.0 - 20.0)).abs() < 0.1);
/// assert!(std > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BayesianLinearModel {
    prior_variance: f64,
    noise_variance: f64,
    /// Cholesky factor of the posterior precision `A`.
    precision_chol: Option<Matrix>,
    /// Posterior mean of the weights (including intercept).
    weight_mean: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl BayesianLinearModel {
    /// Creates an unfitted model with the given prior weight variance and
    /// observation-noise variance.
    ///
    /// # Panics
    ///
    /// Panics if either variance is non-positive.
    pub fn new(prior_variance: f64, noise_variance: f64) -> Self {
        assert!(prior_variance > 0.0, "prior variance must be positive");
        assert!(noise_variance > 0.0, "noise variance must be positive");
        BayesianLinearModel {
            prior_variance,
            noise_variance,
            precision_chol: None,
            weight_mean: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Posterior mean weights (last entry is the intercept). Empty before
    /// fitting.
    pub fn weights(&self) -> &[f64] {
        &self.weight_mean
    }

    /// The prior weight variance `sigma_p^2` this model was built with.
    pub fn prior_variance(&self) -> f64 {
        self.prior_variance
    }

    /// The observation-noise variance `sigma_n^2` this model was built with.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Fits the posterior directly from a precomputed precision matrix `a`
    /// (the full `Phi^T Phi / sigma_n^2 + I / sigma_p^2`, intercept column
    /// included) and right-hand side `b`, together with the target
    /// standardization `(y_mean, y_std)` that produced them.
    ///
    /// This is the `O(d^3)` half of an incremental fit: callers that
    /// maintain sufficient statistics accumulate `a`/`b` in `O(d^2)` per
    /// observation and hand them here, skipping the `O(N d^2)` training
    /// scan that [`Surrogate::fit`] performs. The Cholesky is retried with
    /// the escalating jitter ladder (`1e-10` → `1e-6`) before giving up.
    ///
    /// # Errors
    ///
    /// [`FitError::Empty`] for a `0 x 0` system, [`FitError::ShapeMismatch`]
    /// when `a` is not square or `b` has the wrong length, and
    /// [`FitError::NotPositiveDefinite`] when even the jittered Cholesky
    /// fails.
    pub fn fit_from_precision(
        &mut self,
        a: &Matrix,
        b: &[f64],
        y_mean: f64,
        y_std: f64,
    ) -> Result<(), FitError> {
        if a.rows() == 0 {
            return Err(FitError::Empty);
        }
        if a.rows() != a.cols() || b.len() != a.rows() {
            return Err(FitError::ShapeMismatch);
        }
        let (chol, _jitter) = a
            .cholesky_with_jitter()
            .ok_or(FitError::NotPositiveDefinite)?;
        let z = chol.forward_solve(b);
        self.weight_mean = chol.backward_solve_transposed(&z);
        self.precision_chol = Some(chol);
        self.y_mean = y_mean;
        self.y_std = y_std;
        Ok(())
    }

    fn augment(x: &[f64]) -> Vec<f64> {
        let mut v = Vec::with_capacity(x.len() + 1);
        v.extend_from_slice(x);
        v.push(1.0);
        v
    }

    /// Heteroscedastic fit: observation `i` carries weight `w_i`,
    /// equivalent to giving it noise variance `sigma_n^2 / w_i`. The
    /// precision and right-hand side become the *weighted* moments
    /// (`A = sum w_i phi phi^T / sigma_n^2 + I / sigma_p^2`), and the
    /// target standardization uses the weighted mean and variance, so
    /// unit weights reproduce [`Surrogate::fit`] exactly. This is the
    /// from-scratch reference that the daBO sufficient-statistics path
    /// is pinned against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Surrogate::fit`]; additionally
    /// [`FitError::ShapeMismatch`] when `weights` has the wrong length
    /// or any weight is not finite and positive.
    pub fn fit_weighted(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        weights: &[f64],
    ) -> Result<(), FitError> {
        if x.is_empty() {
            return Err(FitError::Empty);
        }
        if x.len() != y.len()
            || x.len() != weights.len()
            || x.iter().any(|r| r.len() != x[0].len())
            || weights.iter().any(|&w| !w.is_finite() || w <= 0.0)
        {
            return Err(FitError::ShapeMismatch);
        }
        let d = x[0].len() + 1;

        let total: f64 = weights.iter().sum();
        let mean = y.iter().zip(weights).map(|(v, w)| w * v).sum::<f64>() / total;
        let var = y
            .iter()
            .zip(weights)
            .map(|(v, w)| w * (v - mean) * (v - mean))
            .sum::<f64>()
            / total;
        let std = var.sqrt().max(1e-12);

        let mut a = Matrix::zeros(d, d);
        let mut b = vec![0.0; d];
        for ((xi, &yi), &w) in x.iter().zip(y).zip(weights) {
            let phi = Self::augment(xi);
            let yn = (yi - mean) / std;
            for i in 0..d {
                b[i] += w * phi[i] * yn / self.noise_variance;
                for j in 0..=i {
                    let v = w * phi[i] * phi[j] / self.noise_variance;
                    a[(i, j)] += v;
                    if i != j {
                        a[(j, i)] += v;
                    }
                }
            }
        }
        for i in 0..d {
            a[(i, i)] += 1.0 / self.prior_variance;
        }

        self.fit_from_precision(&a, &b, mean, std)
    }
}

impl Surrogate for BayesianLinearModel {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        if x.is_empty() {
            return Err(FitError::Empty);
        }
        if x.len() != y.len() || x.iter().any(|r| r.len() != x[0].len()) {
            return Err(FitError::ShapeMismatch);
        }
        let n = x.len();
        let d = x[0].len() + 1;

        let mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-12);
        let yn: Vec<f64> = y.iter().map(|v| (v - mean) / std).collect();

        // A = Phi^T Phi / sigma_n^2 + I / sigma_p^2, b = Phi^T y / sigma_n^2.
        let mut a = Matrix::zeros(d, d);
        let mut b = vec![0.0; d];
        for (xi, &yi) in x.iter().zip(&yn) {
            let phi = Self::augment(xi);
            for i in 0..d {
                b[i] += phi[i] * yi / self.noise_variance;
                for j in 0..=i {
                    let v = phi[i] * phi[j] / self.noise_variance;
                    a[(i, j)] += v;
                    if i != j {
                        a[(j, i)] += v;
                    }
                }
            }
        }
        for i in 0..d {
            a[(i, i)] += 1.0 / self.prior_variance;
        }

        self.fit_from_precision(&a, &b, mean, std)
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let chol = self.precision_chol.as_ref().expect("predict before fit");
        let phi = Self::augment(x);
        let mean_n: f64 = phi.iter().zip(&self.weight_mean).map(|(a, b)| a * b).sum();
        // var = phi^T A^{-1} phi + sigma_n^2 = |L^{-1} phi|^2 + sigma_n^2.
        let v = chol.forward_solve(&phi);
        let var_n = v.iter().map(|a| a * a).sum::<f64>() + self.noise_variance;
        (mean_n * self.y_std + self.y_mean, var_n.sqrt() * self.y_std)
    }

    fn predict_batch_into(
        &self,
        x: &Matrix,
        scratch: &mut PredictScratch,
        means: &mut [f64],
        stds: &mut [f64],
    ) {
        let chol = self.precision_chol.as_ref().expect("predict before fit");
        let batch = x.rows();
        let d = x.cols();
        assert_eq!(chol.rows(), d + 1, "feature dimension mismatch");
        assert!(means.len() >= batch && stds.len() >= batch);
        // Augmented candidates in the scratch matrix: [x | 1] per row.
        scratch.work.reset(batch, d + 1);
        for i in 0..batch {
            let dst = scratch.work.row_mut(i);
            dst[..d].copy_from_slice(x.row(i));
            dst[d] = 1.0;
        }
        // Means before the in-place solve overwrites the features.
        for (i, mean) in means.iter_mut().enumerate().take(batch) {
            let phi = scratch.work.row(i);
            *mean = phi.iter().zip(&self.weight_mean).map(|(a, b)| a * b).sum();
        }
        // One blocked solve: rows become v = L^{-1} phi.
        chol.solve_triangular_batch(&mut scratch.work);
        for i in 0..batch {
            let v = scratch.work.row(i);
            let var_n = v.iter().map(|a| a * a).sum::<f64>() + self.noise_variance;
            means[i] = means[i] * self.y_std + self.y_mean;
            stds[i] = var_n.sqrt() * self.y_std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::GaussianProcess;
    use crate::kernel::Kernel;
    use crate::stats::spearman_rho;

    #[test]
    fn recovers_linear_coefficients() {
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 3.0 * x[1] + 1.0).collect();
        let mut m = BayesianLinearModel::new(1000.0, 1e-6);
        m.fit(&xs, &ys).unwrap();
        let (p, _) = m.predict(&[7.0, 2.0]);
        assert!((p - (14.0 - 6.0 + 1.0)).abs() < 1e-2, "{p}");
    }

    #[test]
    fn agrees_with_linear_kernel_gp_on_ranking() {
        // Weight-space and function-space views of the same prior should
        // rank candidates identically (up to numerics).
        let xs: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![i as f64 / 5.0, (i * 7 % 11) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - 0.3 * x[1] + 2.0).collect();
        let mut blm = BayesianLinearModel::new(1.0, 1e-3);
        blm.fit(&xs, &ys).unwrap();
        let mut gp = GaussianProcess::new(Kernel::linear(), 1e-3);
        gp.fit(&xs, &ys).unwrap();
        let test: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![i as f64 / 3.0, (i * 5 % 7) as f64])
            .collect();
        let pa: Vec<f64> = test.iter().map(|x| blm.predict(x).0).collect();
        let pb: Vec<f64> = test.iter().map(|x| gp.predict(x).0).collect();
        assert!(spearman_rho(&pa, &pb) > 0.99);
    }

    #[test]
    fn uncertainty_shrinks_with_data() {
        let mk = |n: usize| {
            let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
            let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
            let mut m = BayesianLinearModel::new(10.0, 0.01);
            m.fit(&xs, &ys).unwrap();
            m.predict(&[0.5]).1
        };
        assert!(mk(100) < mk(5));
    }

    #[test]
    fn weights_exposed_after_fit() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![2.0, 4.0, 6.0];
        let mut m = BayesianLinearModel::new(100.0, 1e-4);
        assert!(m.weights().is_empty());
        m.fit(&xs, &ys).unwrap();
        assert_eq!(m.weights().len(), 2); // slope + intercept
    }

    #[test]
    fn errors_on_bad_shapes() {
        let mut m = BayesianLinearModel::new(1.0, 0.1);
        assert_eq!(m.fit(&[], &[]), Err(FitError::Empty));
        assert_eq!(
            m.fit(&[vec![1.0]], &[1.0, 2.0]),
            Err(FitError::ShapeMismatch)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_noise_rejected() {
        let _ = BayesianLinearModel::new(1.0, 0.0);
    }

    #[test]
    fn batch_predict_is_bit_identical_to_scalar() {
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i / 7) as f64, (i % 3) as f64 - 1.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.5 * x[0] - 0.7 * x[1] + 0.2 * x[2] + 3.0)
            .collect();
        let mut m = BayesianLinearModel::new(10.0, 1e-2);
        m.fit(&xs, &ys).unwrap();

        let cands: Vec<Vec<f64>> = (0..17)
            .map(|i| vec![i as f64 * 0.4, (i * 3 % 5) as f64, -(i as f64) * 0.1])
            .collect();
        let batch = Matrix::from_rows(&cands);
        let mut scratch = PredictScratch::default();
        let mut means = vec![0.0; 17];
        let mut stds = vec![0.0; 17];
        m.predict_batch_into(&batch, &mut scratch, &mut means, &mut stds);
        for (i, c) in cands.iter().enumerate() {
            let (sm, ss) = m.predict(c);
            assert_eq!(means[i], sm, "mean row {i}");
            assert_eq!(stds[i], ss, "std row {i}");
        }
    }

    #[test]
    fn fit_from_precision_matches_full_fit() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - 2.0 * x[1] + 0.5).collect();
        let mut full = BayesianLinearModel::new(10.0, 1e-2);
        full.fit(&xs, &ys).unwrap();

        // Rebuild the same A/b by hand and fit the second model from them.
        let n = xs.len() as f64;
        let mean = ys.iter().sum::<f64>() / n;
        let var = ys.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-12);
        let d = 3;
        let mut a = Matrix::zeros(d, d);
        let mut b = vec![0.0; d];
        for (xi, &yi) in xs.iter().zip(&ys) {
            let phi = [xi[0], xi[1], 1.0];
            let yn = (yi - mean) / std;
            for i in 0..d {
                b[i] += phi[i] * yn / 1e-2;
                for j in 0..d {
                    a[(i, j)] += phi[i] * phi[j] / 1e-2;
                }
            }
        }
        for i in 0..d {
            a[(i, i)] += 1.0 / 10.0;
        }
        let mut inc = BayesianLinearModel::new(10.0, 1e-2);
        inc.fit_from_precision(&a, &b, mean, std).unwrap();
        for (w_full, w_inc) in full.weights().iter().zip(inc.weights()) {
            assert!((w_full - w_inc).abs() < 1e-9, "{w_full} vs {w_inc}");
        }
    }

    #[test]
    fn unit_weights_reproduce_the_plain_fit() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * 3 % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x[0] + x[1] - 2.0).collect();
        let mut plain = BayesianLinearModel::new(10.0, 1e-2);
        plain.fit(&xs, &ys).unwrap();
        let mut weighted = BayesianLinearModel::new(10.0, 1e-2);
        weighted
            .fit_weighted(&xs, &ys, &vec![1.0; xs.len()])
            .unwrap();
        for (a, b) in plain.weights().iter().zip(weighted.weights()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn downweighted_outlier_loses_influence() {
        // A clean line plus one corrupted point: trusted fully it drags
        // the slope; at near-zero weight the fit recovers the line.
        let mut xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        xs.push(vec![10.0]);
        ys.push(500.0);
        let mut trusted = BayesianLinearModel::new(100.0, 1e-2);
        trusted
            .fit_weighted(&xs, &ys, &vec![1.0; xs.len()])
            .unwrap();
        let mut wts = vec![1.0; xs.len()];
        *wts.last_mut().unwrap() = 1e-6;
        let mut skeptical = BayesianLinearModel::new(100.0, 1e-2);
        skeptical.fit_weighted(&xs, &ys, &wts).unwrap();
        let clean = 3.0 * 15.0 + 1.0;
        let err_trusted = (trusted.predict(&[15.0]).0 - clean).abs();
        let err_skeptical = (skeptical.predict(&[15.0]).0 - clean).abs();
        assert!(
            err_skeptical < err_trusted / 10.0,
            "{err_skeptical} vs {err_trusted}"
        );
    }

    #[test]
    fn weighted_fit_rejects_bad_weights() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0, 2.0];
        let mut m = BayesianLinearModel::new(1.0, 0.1);
        assert_eq!(
            m.fit_weighted(&xs, &ys, &[1.0]),
            Err(FitError::ShapeMismatch)
        );
        assert_eq!(
            m.fit_weighted(&xs, &ys, &[1.0, 0.0]),
            Err(FitError::ShapeMismatch)
        );
        assert_eq!(
            m.fit_weighted(&xs, &ys, &[1.0, f64::NAN]),
            Err(FitError::ShapeMismatch)
        );
    }

    #[test]
    fn fit_from_precision_shape_errors() {
        let mut m = BayesianLinearModel::new(1.0, 0.1);
        assert_eq!(
            m.fit_from_precision(&Matrix::zeros(0, 0), &[], 0.0, 1.0),
            Err(FitError::Empty)
        );
        assert_eq!(
            m.fit_from_precision(&Matrix::zeros(2, 2), &[1.0], 0.0, 1.0),
            Err(FitError::ShapeMismatch)
        );
    }

    #[test]
    fn degenerate_precision_survives_via_jitter_ladder() {
        // A = [[1, 1], [1, 1]] is numerically rank one: the bare Cholesky
        // fails deterministically (the (1,1) residual is exactly zero), so
        // only the jitter ladder lets the fit succeed — previously this
        // returned NotPositiveDefinite.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(a.cholesky().is_none());
        let mut m = BayesianLinearModel::new(1.0, 0.1);
        m.fit_from_precision(&a, &[1.0, 1.0], 0.0, 1.0)
            .expect("jitter ladder should rescue this fit");
        let (p, s) = m.predict(&[2.0]);
        assert!(p.is_finite() && s.is_finite());
    }
}
