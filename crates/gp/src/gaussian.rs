//! Kernelized Gaussian-process regression.

use crate::kernel::Kernel;
use crate::matrix::Matrix;
use crate::{FitError, PredictScratch, Surrogate};

/// Gaussian-process regression with an explicit kernel (Section V-A's
/// surrogate model).
///
/// Targets are standardized internally, so costs spanning orders of
/// magnitude should be log-transformed by the caller (daBO does this).
/// Fitting costs `O(N^3)` in the number of observations — the cost the
/// paper attributes to Matérn/RBF kernels; for the linear kernel prefer
/// [`crate::BayesianLinearModel`], which is the same posterior computed in
/// weight space.
///
/// # Examples
///
/// ```
/// use spotlight_gp::{GaussianProcess, Kernel, Surrogate};
///
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 5.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
/// let mut gp = GaussianProcess::new(Kernel::matern52(1.0), 1e-6);
/// gp.fit(&xs, &ys).unwrap();
/// let (mean, std) = gp.predict(&[1.0]);
/// assert!((mean - 1.0f64.sin()).abs() < 0.05);
/// assert!(std >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    x_train: Vec<Vec<f64>>,
    chol: Option<Matrix>,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Creates an unfitted GP with the given kernel and observation-noise
    /// variance.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative.
    pub fn new(kernel: Kernel, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise variance must be non-negative");
        GaussianProcess {
            kernel,
            noise,
            x_train: Vec::new(),
            chol: None,
            alpha: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.x_train.len()
    }

    /// Whether the GP has no training data.
    pub fn is_empty(&self) -> bool {
        self.x_train.is_empty()
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        if x.is_empty() {
            return Err(FitError::Empty);
        }
        if x.len() != y.len() || x.iter().any(|r| r.len() != x[0].len()) {
            return Err(FitError::ShapeMismatch);
        }
        let n = x.len();

        // Standardize targets for numerical stability.
        let mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-12);
        let yn: Vec<f64> = y.iter().map(|v| (v - mean) / std).collect();

        // K + noise I, built once; the jitter ladder (1e-10 → 1e-6) retries
        // the Cholesky on the same matrix instead of rebuilding the kernel.
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel.eval(&x[i], &x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.noise;
        }
        let (chol, _jitter) = k
            .cholesky_with_jitter()
            .ok_or(FitError::NotPositiveDefinite)?;

        let z = chol.forward_solve(&yn);
        self.alpha = chol.backward_solve_transposed(&z);
        self.chol = Some(chol);
        self.x_train = x.to_vec();
        self.y_mean = mean;
        self.y_std = std;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let chol = self.chol.as_ref().expect("predict before fit");
        let kstar: Vec<f64> = self
            .x_train
            .iter()
            .map(|xi| self.kernel.eval(xi, x))
            .collect();
        let mean_n: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        // var = k(x,x) - v^T v with v = L^{-1} k*.
        let v = chol.forward_solve(&kstar);
        let kxx = self.kernel.eval(x, x) + self.noise;
        let var_n = (kxx - v.iter().map(|a| a * a).sum::<f64>()).max(0.0);
        (mean_n * self.y_std + self.y_mean, var_n.sqrt() * self.y_std)
    }

    fn predict_batch_into(
        &self,
        x: &Matrix,
        scratch: &mut PredictScratch,
        means: &mut [f64],
        stds: &mut [f64],
    ) {
        let chol = self.chol.as_ref().expect("predict before fit");
        let batch = x.rows();
        let n = self.x_train.len();
        assert!(means.len() >= batch && stds.len() >= batch);
        // Kernel rows k* for every candidate, then one blocked solve.
        scratch.work.reset(batch, n);
        for i in 0..batch {
            let xi = x.row(i);
            let dst = scratch.work.row_mut(i);
            for (d, xt) in dst.iter_mut().zip(&self.x_train) {
                *d = self.kernel.eval(xt, xi);
            }
        }
        for (i, mean) in means.iter_mut().enumerate().take(batch) {
            let kstar = scratch.work.row(i);
            *mean = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        }
        chol.solve_triangular_batch(&mut scratch.work);
        for i in 0..batch {
            let v = scratch.work.row(i);
            let xi = x.row(i);
            let kxx = self.kernel.eval(xi, xi) + self.noise;
            let var_n = (kxx - v.iter().map(|a| a * a).sum::<f64>()).max(0.0);
            means[i] = means[i] * self.y_std + self.y_mean;
            stds[i] = var_n.sqrt() * self.y_std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / n as f64 * 4.0]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let xs = grid(15);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let mut gp = GaussianProcess::new(Kernel::rbf(1.0), 1e-8);
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, s) = gp.predict(x);
            assert!((m - y).abs() < 1e-3, "{m} vs {y}");
            assert!(s < 0.1);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = grid(10);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let mut gp = GaussianProcess::new(Kernel::matern52(0.5), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let (_, s_in) = gp.predict(&[2.0]);
        let (_, s_out) = gp.predict(&[50.0]);
        assert!(s_out > s_in * 5.0, "{s_out} !> {s_in}");
    }

    #[test]
    fn linear_kernel_extrapolates_linear_functions() {
        let xs = grid(10);
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 1.0).collect();
        let mut gp = GaussianProcess::new(Kernel::linear(), 1e-8);
        gp.fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[10.0]);
        assert!((m - 29.0).abs() < 0.5, "{m}");
    }

    #[test]
    fn fit_errors_reported() {
        let mut gp = GaussianProcess::new(Kernel::linear(), 1e-6);
        assert_eq!(gp.fit(&[], &[]), Err(FitError::Empty));
        assert_eq!(
            gp.fit(&[vec![1.0]], &[1.0, 2.0]),
            Err(FitError::ShapeMismatch)
        );
        assert_eq!(
            gp.fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]),
            Err(FitError::ShapeMismatch)
        );
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let xs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![2.0, 2.0, 2.0];
        let mut gp = GaussianProcess::new(Kernel::rbf(1.0), 0.0);
        gp.fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[1.0]);
        assert!((m - 2.0).abs() < 1e-3);
    }

    #[test]
    fn constant_targets_predict_constant() {
        let xs = grid(8);
        let ys = vec![5.0; 8];
        let mut gp = GaussianProcess::new(Kernel::matern52(1.0), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[1.7]);
        assert!((m - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let gp = GaussianProcess::new(Kernel::linear(), 1e-6);
        let _ = gp.predict(&[1.0]);
    }

    #[test]
    fn batch_predict_is_bit_identical_to_scalar() {
        let xs = grid(23);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 1.3).cos()).collect();
        let mut gp = GaussianProcess::new(Kernel::matern52(0.8), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let cands: Vec<Vec<f64>> = (0..11).map(|i| vec![i as f64 * 0.37]).collect();
        let batch = Matrix::from_rows(&cands);
        let mut scratch = PredictScratch::default();
        let mut means = vec![0.0; 11];
        let mut stds = vec![0.0; 11];
        gp.predict_batch_into(&batch, &mut scratch, &mut means, &mut stds);
        for (i, c) in cands.iter().enumerate() {
            let (sm, ss) = gp.predict(c);
            assert_eq!(means[i], sm, "mean row {i}");
            assert_eq!(stds[i], ss, "std row {i}");
        }
    }

    #[test]
    fn refit_replaces_data() {
        let mut gp = GaussianProcess::new(Kernel::rbf(1.0), 1e-6);
        gp.fit(&grid(5), &[0.0; 5]).unwrap();
        assert_eq!(gp.len(), 5);
        gp.fit(&grid(9), &[1.0; 9]).unwrap();
        assert_eq!(gp.len(), 9);
        let (m, _) = gp.predict(&[1.0]);
        assert!((m - 1.0).abs() < 1e-6);
    }
}
