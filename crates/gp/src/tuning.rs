//! Kernel hyper-parameter selection.
//!
//! The stationary kernels need a length scale; off-the-shelf BO stacks
//! tune it by maximizing marginal likelihood. This module provides the
//! simpler, robust alternative used here: a hold-out grid search over
//! candidate length scales (plus the median-distance heuristic as the
//! grid's anchor). Used by the Spotlight-V/Matérn ablation paths.

use crate::gaussian::GaussianProcess;
use crate::kernel::Kernel;
use crate::{FitError, Surrogate};

/// The median pairwise Euclidean distance of a sample of `xs` — the
/// classic "median heuristic" initial length scale.
///
/// Returns 1.0 for degenerate inputs (fewer than two points or all
/// points identical).
///
/// # Examples
///
/// ```
/// use spotlight_gp::tuning::median_distance;
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
/// assert!((median_distance(&xs) - 1.0).abs() < 1e-9);
/// ```
pub fn median_distance(xs: &[Vec<f64>]) -> f64 {
    // Cap the pair count for large sets: a deterministic stride sample.
    const MAX_POINTS: usize = 64;
    let stride = (xs.len() / MAX_POINTS).max(1);
    let sample: Vec<&Vec<f64>> = xs.iter().step_by(stride).collect();
    let mut dists = Vec::new();
    for (i, a) in sample.iter().enumerate() {
        for b in sample.iter().skip(i + 1) {
            let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
            if d2 > 0.0 {
                dists.push(d2.sqrt());
            }
        }
    }
    if dists.is_empty() {
        return 1.0;
    }
    dists.sort_by(f64::total_cmp);
    dists[dists.len() / 2]
}

/// Selects a Matérn-5/2 length scale by hold-out validation: fits on
/// 80% of the data at each candidate scale (the median heuristic times
/// `{0.25, 0.5, 1, 2, 4}`) and returns the kernel minimizing held-out
/// squared error, together with that error.
///
/// # Errors
///
/// Propagates [`FitError`] when the data cannot be fit at any scale.
///
/// # Examples
///
/// ```
/// use spotlight_gp::tuning::select_matern_lengthscale;
/// let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x[0]).sin()).collect();
/// let (kernel, err) = select_matern_lengthscale(&xs, &ys, 1e-4)?;
/// assert!(err < 0.1);
/// # drop(kernel);
/// # Ok::<(), spotlight_gp::FitError>(())
/// ```
pub fn select_matern_lengthscale(
    xs: &[Vec<f64>],
    ys: &[f64],
    noise: f64,
) -> Result<(Kernel, f64), FitError> {
    if xs.is_empty() {
        return Err(FitError::Empty);
    }
    if xs.len() != ys.len() {
        return Err(FitError::ShapeMismatch);
    }
    let anchor = median_distance(xs);
    if xs.len() < 5 {
        // Too little data to validate: fall back to the heuristic alone.
        return Ok((Kernel::matern52(anchor.max(1e-6)), f64::NAN));
    }
    // Interleaved split: every 5th point validates, the rest train. An
    // ordered prefix split would turn validation into extrapolation.
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    let mut val_x = Vec::new();
    let mut val_y = Vec::new();
    for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
        if i % 5 == 2 {
            val_x.push(x.clone());
            val_y.push(*y);
        } else {
            train_x.push(x.clone());
            train_y.push(*y);
        }
    }

    let mut best: Option<(Kernel, f64)> = None;
    let mut last_err = FitError::Empty;
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let ls = (anchor * factor).max(1e-6);
        let kernel = Kernel::matern52(ls);
        let mut gp = GaussianProcess::new(kernel, noise);
        match gp.fit(&train_x, &train_y) {
            Ok(()) => {
                let mse: f64 = val_x
                    .iter()
                    .zip(&val_y)
                    .map(|(x, y)| {
                        let (m, _) = gp.predict(x);
                        (m - y) * (m - y)
                    })
                    .sum::<f64>()
                    / val_x.len() as f64;
                if best.as_ref().is_none_or(|(_, b)| mse < *b) {
                    best = Some((kernel, mse));
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_distance_of_grid() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let d = median_distance(&xs);
        assert!((1.0..=4.0).contains(&d));
    }

    #[test]
    fn median_distance_degenerate_inputs() {
        assert_eq!(median_distance(&[]), 1.0);
        assert_eq!(median_distance(&[vec![3.0]]), 1.0);
        assert_eq!(median_distance(&[vec![3.0], vec![3.0]]), 1.0);
    }

    #[test]
    fn selection_prefers_scale_matched_to_function() {
        // A rapidly-varying function needs a short length scale; the
        // validation error at the chosen scale must beat a terrible one.
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin()).collect();
        let (kernel, err) = select_matern_lengthscale(&xs, &ys, 1e-4).unwrap();
        assert!(err < 0.2, "held-out MSE {err}");
        let mut huge = GaussianProcess::new(Kernel::matern52(1e3), 1e-4);
        huge.fit(&xs[..48], &ys[..48]).unwrap();
        let huge_mse: f64 = xs[48..]
            .iter()
            .zip(&ys[48..])
            .map(|(x, y)| {
                let (m, _) = huge.predict(x);
                (m - y) * (m - y)
            })
            .sum::<f64>()
            / 12.0;
        assert!(err <= huge_mse, "{err} vs {huge_mse}");
        let _ = kernel;
    }

    #[test]
    fn selection_errors_on_empty() {
        assert_eq!(
            select_matern_lengthscale(&[], &[], 1e-4),
            Err(FitError::Empty)
        );
    }

    #[test]
    fn selection_shape_mismatch() {
        assert_eq!(
            select_matern_lengthscale(&[vec![1.0]], &[1.0, 2.0], 1e-4),
            Err(FitError::ShapeMismatch)
        );
    }
}
