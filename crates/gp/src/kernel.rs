//! Covariance (kernel) functions.
//!
//! Section V-A: "Typically, a Matérn or Radial Basis Function (RBF) kernel
//! is employed ... Instead, daBO employs a simple linear kernel, which
//! ... takes far fewer samples to accurately model the trends of the cost
//! function, and fits well with our feature selection."

use std::fmt;

/// A covariance function over feature vectors.
///
/// # Examples
///
/// ```
/// use spotlight_gp::Kernel;
///
/// let k = Kernel::rbf(1.0);
/// // RBF of a point with itself is 1 (plus no noise here).
/// assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `k(x, y) = scale * (x . y) + bias` — the daBO default.
    Linear {
        /// Multiplier on the dot product.
        scale: f64,
        /// Additive bias (prior variance of the intercept).
        bias: f64,
    },
    /// `k(x, y) = exp(-|x-y|^2 / (2 l^2))`.
    Rbf {
        /// Length scale `l`.
        lengthscale: f64,
    },
    /// Matérn-5/2: `(1 + a + a^2/3) exp(-a)` with
    /// `a = sqrt(5) |x-y| / l`.
    Matern52 {
        /// Length scale `l`.
        lengthscale: f64,
    },
}

impl Kernel {
    /// The daBO linear kernel with unit scale and bias.
    pub fn linear() -> Self {
        Kernel::Linear {
            scale: 1.0,
            bias: 1.0,
        }
    }

    /// An RBF kernel with the given length scale.
    ///
    /// # Panics
    ///
    /// Panics if `lengthscale <= 0`.
    pub fn rbf(lengthscale: f64) -> Self {
        assert!(lengthscale > 0.0, "length scale must be positive");
        Kernel::Rbf { lengthscale }
    }

    /// A Matérn-5/2 kernel with the given length scale.
    ///
    /// # Panics
    ///
    /// Panics if `lengthscale <= 0`.
    pub fn matern52(lengthscale: f64) -> Self {
        assert!(lengthscale > 0.0, "length scale must be positive");
        Kernel::Matern52 { lengthscale }
    }

    /// Evaluates the covariance between two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "feature dimension mismatch");
        match *self {
            Kernel::Linear { scale, bias } => {
                let dot: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
                scale * dot + bias
            }
            Kernel::Rbf { lengthscale } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                (-d2 / (2.0 * lengthscale * lengthscale)).exp()
            }
            Kernel::Matern52 { lengthscale } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                let a = (5.0 * d2).sqrt() / lengthscale;
                (1.0 + a + a * a / 3.0) * (-a).exp()
            }
        }
    }

    /// Whether this kernel is stationary (depends only on `x - y`).
    pub fn is_stationary(&self) -> bool {
        !matches!(self, Kernel::Linear { .. })
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kernel::Linear { .. } => f.write_str("linear"),
            Kernel::Rbf { .. } => f.write_str("RBF"),
            Kernel::Matern52 { .. } => f.write_str("Matern-5/2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_matches_dot_product() {
        let k = Kernel::Linear {
            scale: 2.0,
            bias: 0.5,
        };
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 2.0 * 11.0 + 0.5);
    }

    #[test]
    fn stationary_kernels_peak_at_zero_distance() {
        for k in [Kernel::rbf(0.7), Kernel::matern52(0.7)] {
            let same = k.eval(&[1.0, -1.0], &[1.0, -1.0]);
            let far = k.eval(&[1.0, -1.0], &[5.0, 5.0]);
            assert!((same - 1.0).abs() < 1e-9);
            assert!(far < same);
        }
    }

    #[test]
    fn matern_between_rbf_and_exp_in_smoothness() {
        // At moderate distances Matern-5/2 decays slower than RBF.
        let r = Kernel::rbf(1.0);
        let m = Kernel::matern52(1.0);
        let x = [0.0];
        let y = [2.0];
        assert!(m.eval(&x, &y) > r.eval(&x, &y));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lengthscale_rejected() {
        let _ = Kernel::rbf(0.0);
    }

    #[test]
    fn stationarity_flags() {
        assert!(!Kernel::linear().is_stationary());
        assert!(Kernel::rbf(1.0).is_stationary());
        assert!(Kernel::matern52(1.0).is_stationary());
    }

    proptest! {
        #[test]
        fn kernels_are_symmetric(
            a in proptest::collection::vec(-3.0f64..3.0, 4),
            b in proptest::collection::vec(-3.0f64..3.0, 4),
        ) {
            for k in [Kernel::linear(), Kernel::rbf(1.3), Kernel::matern52(0.9)] {
                prop_assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-12);
            }
        }

        #[test]
        fn stationary_values_in_unit_interval(
            a in proptest::collection::vec(-3.0f64..3.0, 4),
            b in proptest::collection::vec(-3.0f64..3.0, 4),
        ) {
            for k in [Kernel::rbf(1.0), Kernel::matern52(1.0)] {
                let v = k.eval(&a, &b);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }
    }
}
