//! The [`Model`] container: an ordered list of unique CONV layers with
//! multiplicities.

use std::fmt;

use spotlight_conv::ConvLayer;

/// One unique layer shape in a model together with how many times it
/// occurs.
///
/// De-duplication matters for search cost: the layerwise optimizer
/// (daBO_SW) runs once per *unique* shape and the resulting delay/energy is
/// scaled by `count` when aggregating model-level cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerEntry {
    /// The layer shape.
    pub layer: ConvLayer,
    /// How many structurally identical instances the model contains.
    pub count: u32,
}

impl fmt::Display for LayerEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x{}", self.layer, self.count)
    }
}

/// An owned model identifier.
///
/// Earlier revisions labeled models with `&'static str`, which silently
/// restricted the public API to compile-time names: user-defined models
/// (an architecture sweep generating `cnn-w{width}` names, say) had to
/// leak heap strings to participate. `ModelId` owns its string, converts
/// from both `&str` and `String`, and compares directly against string
/// literals.
///
/// ```
/// use spotlight_models::ModelId;
///
/// let id = ModelId::from(format!("cnn-w{}", 64));
/// assert_eq!(id, "cnn-w64");
/// assert_eq!(id.as_str(), "cnn-w64");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(String);

impl ModelId {
    /// Wraps a name.
    pub fn new(name: impl Into<String>) -> Self {
        ModelId(name.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ModelId {
    fn from(name: &str) -> Self {
        ModelId(name.to_string())
    }
}

impl From<String> for ModelId {
    fn from(name: String) -> Self {
        ModelId(name)
    }
}

impl From<ModelId> for String {
    fn from(id: ModelId) -> Self {
        id.0
    }
}

impl PartialEq<str> for ModelId {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for ModelId {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<ModelId> for &str {
    fn eq(&self, other: &ModelId) -> bool {
        *self == other.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A DL model lowered onto CONV layers.
///
/// # Examples
///
/// ```
/// use spotlight_conv::ConvLayer;
/// use spotlight_models::Model;
///
/// let m = Model::from_layers(
///     "tiny",
///     vec![
///         ConvLayer::new(1, 8, 3, 3, 3, 16, 16),
///         ConvLayer::new(1, 8, 8, 3, 3, 16, 16),
///         ConvLayer::new(1, 8, 8, 3, 3, 16, 16), // duplicate, merged
///     ],
/// );
/// assert_eq!(m.layers().len(), 2);
/// assert_eq!(m.instance_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    name: ModelId,
    layers: Vec<LayerEntry>,
}

impl Model {
    /// Builds a model from an ordered list of layer instances, merging
    /// structurally identical shapes (ignoring their `name` labels) into a
    /// single entry with a multiplicity. The name may be any owned or
    /// borrowed string — user-defined models need no `'static` names.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn from_layers(name: impl Into<ModelId>, layers: Vec<ConvLayer>) -> Self {
        assert!(
            !layers.is_empty(),
            "a model must contain at least one layer"
        );
        let mut entries: Vec<LayerEntry> = Vec::new();
        for l in layers {
            match entries.iter_mut().find(|e| same_shape(&e.layer, &l)) {
                Some(e) => e.count += 1,
                None => entries.push(LayerEntry { layer: l, count: 1 }),
            }
        }
        Model {
            name: name.into(),
            layers: entries,
        }
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The model's owned identifier.
    pub fn id(&self) -> &ModelId {
        &self.name
    }

    /// The unique layer shapes with multiplicities, in first-occurrence
    /// order.
    pub fn layers(&self) -> &[LayerEntry] {
        &self.layers
    }

    /// Total number of layer *instances* (sum of multiplicities).
    pub fn instance_count(&self) -> u32 {
        self.layers.iter().map(|e| e.count).sum()
    }

    /// Total MACs across all layer instances.
    pub fn total_macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|e| e.layer.macs() * e.count as u64)
            .sum()
    }

    /// Total weight parameters across all layer instances.
    pub fn total_weights(&self) -> u64 {
        self.layers
            .iter()
            .map(|e| e.layer.weight_elems() * e.count as u64)
            .sum()
    }

    /// The layer with the largest MAC count (the throughput bottleneck for
    /// compute-bound accelerators).
    pub fn heaviest_layer(&self) -> &LayerEntry {
        self.layers
            .iter()
            .max_by_key(|e| e.layer.macs())
            .expect("model is non-empty")
    }

    /// Iterates over unique layers.
    pub fn iter(&self) -> std::slice::Iter<'_, LayerEntry> {
        self.layers.iter()
    }
}

impl<'a> IntoIterator for &'a Model {
    type Item = &'a LayerEntry;
    type IntoIter = std::slice::Iter<'a, LayerEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} unique layers, {} instances, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.instance_count(),
            self.total_macs() as f64 / 1e9
        )?;
        for e in &self.layers {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Structural equality that ignores the cosmetic `name` label.
fn same_shape(a: &ConvLayer, b: &ConvLayer) -> bool {
    a.extents() == b.extents() && a.stride == b.stride
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(k: u64, c: u64, xy: u64) -> ConvLayer {
        ConvLayer::new(1, k, c, 3, 3, xy, xy)
    }

    #[test]
    fn dedup_merges_identical_shapes() {
        let m = Model::from_layers("t", vec![l(8, 8, 16), l(8, 8, 16), l(16, 8, 16)]);
        assert_eq!(m.layers().len(), 2);
        assert_eq!(m.layers()[0].count, 2);
        assert_eq!(m.instance_count(), 3);
    }

    #[test]
    fn dedup_ignores_name_labels() {
        let a = l(8, 8, 16).with_name("a");
        let b = l(8, 8, 16).with_name("b");
        let m = Model::from_layers("t", vec![a, b]);
        assert_eq!(m.layers().len(), 1);
        assert_eq!(m.layers()[0].count, 2);
    }

    #[test]
    fn dedup_distinguishes_stride() {
        let m = Model::from_layers("t", vec![l(8, 8, 16), l(8, 8, 16).with_stride(2)]);
        assert_eq!(m.layers().len(), 2);
    }

    #[test]
    fn total_macs_scales_by_count() {
        let m = Model::from_layers("t", vec![l(8, 8, 16), l(8, 8, 16)]);
        assert_eq!(m.total_macs(), 2 * l(8, 8, 16).macs());
    }

    #[test]
    fn heaviest_layer_found() {
        let m = Model::from_layers("t", vec![l(8, 8, 16), l(64, 64, 16)]);
        assert_eq!(m.heaviest_layer().layer.k, 64);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        let _ = Model::from_layers("t", vec![]);
    }

    #[test]
    fn runtime_generated_names_are_owned() {
        let width = 48;
        let m = Model::from_layers(format!("cnn-w{width}"), vec![l(8, 8, 16)]);
        assert_eq!(m.name(), "cnn-w48");
        assert_eq!(*m.id(), "cnn-w48");
        assert_eq!("cnn-w48", *m.id());
        assert_eq!(m.id().to_string(), "cnn-w48");
    }

    #[test]
    fn display_mentions_name_and_layers() {
        let m = Model::from_layers("t", vec![l(8, 8, 16)]);
        let s = m.to_string();
        assert!(s.contains('t'));
        assert!(s.contains("unique layers"));
    }
}
