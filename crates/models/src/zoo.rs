//! Concrete layer tables for the five evaluated models.
//!
//! Shapes follow the original publications at 224x224 (image models) /
//! sequence length 512 (Transformer), batch size 1 — the inference setting
//! of the paper. Pooling and activation layers are omitted (unsupported by
//! the MAESTRO backend, Section II-A); fully-connected layers and GEMMs are
//! lowered via [`spotlight_conv::lower`].

use spotlight_conv::{depthwise_separable_to_conv, fc_to_conv, gemm_to_conv, ConvLayer};

use crate::model::Model;

/// VGG16: 13 3x3 CONVs plus 3 FC layers (Simonyan & Zisserman, 2014).
///
/// ```
/// let m = spotlight_models::vgg16();
/// assert!(m.total_macs() > 15_000_000_000); // ~15.5 GMACs
/// ```
pub fn vgg16() -> Model {
    let mut layers = Vec::new();
    // (k, c, spatial, repeats)
    let blocks: [(u64, u64, u64, u32); 6] = [
        (64, 3, 224, 1),
        (64, 64, 224, 1),
        (128, 64, 112, 1),
        (128, 128, 112, 1),
        (256, 128, 56, 1),
        (256, 256, 56, 2),
    ];
    for (k, c, xy, reps) in blocks {
        for _ in 0..reps {
            layers.push(ConvLayer::new(1, k, c, 3, 3, xy, xy));
        }
    }
    layers.push(ConvLayer::new(1, 512, 256, 3, 3, 28, 28));
    for _ in 0..2 {
        layers.push(ConvLayer::new(1, 512, 512, 3, 3, 28, 28));
    }
    for _ in 0..3 {
        layers.push(ConvLayer::new(1, 512, 512, 3, 3, 14, 14));
    }
    layers.push(fc_to_conv(1, 512 * 7 * 7, 4096));
    layers.push(fc_to_conv(1, 4096, 4096));
    layers.push(fc_to_conv(1, 4096, 1000));
    Model::from_layers("VGG16", layers)
}

/// ResNet-50: stem + 16 bottleneck blocks + FC (He et al., 2016).
///
/// ```
/// let m = spotlight_models::resnet50();
/// let gmacs = m.total_macs() as f64 / 1e9;
/// assert!((3.0..5.0).contains(&gmacs), "{gmacs}");
/// ```
pub fn resnet50() -> Model {
    let mut layers = Vec::new();
    layers.push(ConvLayer::new(1, 64, 3, 7, 7, 112, 112).with_stride(2));

    // (in_ch, mid_ch, out_ch, spatial, blocks, first_stride)
    let stages: [(u64, u64, u64, u64, u32, u64); 4] = [
        (64, 64, 256, 56, 3, 1),
        (256, 128, 512, 28, 4, 2),
        (512, 256, 1024, 14, 6, 2),
        (1024, 512, 2048, 7, 3, 2),
    ];
    for (in_ch, mid, out, xy, blocks, first_stride) in stages {
        for b in 0..blocks {
            let (cin, stride) = if b == 0 {
                (in_ch, first_stride)
            } else {
                (out, 1)
            };
            // 1x1 reduce (applies the stage's spatial stride in the first block)
            layers.push(ConvLayer::new(1, mid, cin, 1, 1, xy, xy).with_stride(stride));
            // 3x3
            layers.push(ConvLayer::new(1, mid, mid, 3, 3, xy, xy));
            // 1x1 expand
            layers.push(ConvLayer::new(1, out, mid, 1, 1, xy, xy));
            if b == 0 {
                // projection shortcut
                layers.push(ConvLayer::new(1, out, cin, 1, 1, xy, xy).with_stride(stride));
            }
        }
    }
    layers.push(fc_to_conv(1, 2048, 1000));
    Model::from_layers("ResNet-50", layers)
}

/// MobileNetV2: inverted-residual blocks (Sandler et al., 2018).
///
/// ```
/// let m = spotlight_models::mobilenet_v2();
/// let gmacs = m.total_macs() as f64 / 1e9;
/// assert!((0.2..0.7).contains(&gmacs), "{gmacs}");
/// ```
pub fn mobilenet_v2() -> Model {
    let mut layers = Vec::new();
    layers.push(ConvLayer::new(1, 32, 3, 3, 3, 112, 112).with_stride(2));

    // Inverted residual settings (t, c, n, s) from the paper's Table 2.
    let settings: [(u64, u64, u32, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch: u64 = 32;
    let mut xy: u64 = 112;
    for (t, c, n, s) in settings {
        for b in 0..n {
            let stride = if b == 0 { s } else { 1 };
            let out_xy = if stride == 2 { xy / 2 } else { xy };
            let expanded = in_ch * t;
            if t != 1 {
                // 1x1 expansion
                layers.push(ConvLayer::new(1, expanded, in_ch, 1, 1, xy, xy));
            }
            // depthwise 3x3 + pointwise projection
            let (dw, pw) = depthwise_separable_to_conv(1, expanded, c, 3, out_xy, out_xy, stride);
            layers.push(dw);
            layers.push(pw);
            in_ch = c;
            xy = out_xy;
        }
    }
    layers.push(ConvLayer::new(1, 1280, 320, 1, 1, 7, 7));
    layers.push(fc_to_conv(1, 1280, 1000));
    Model::from_layers("MobileNetV2", layers)
}

/// MnasNet-A1-like: NAS-generated mobile model (Tan et al., 2019).
/// Squeeze-excite stages are omitted (element-wise, negligible MACs).
///
/// ```
/// let m = spotlight_models::mnasnet();
/// let gmacs = m.total_macs() as f64 / 1e9;
/// assert!((0.2..0.7).contains(&gmacs), "{gmacs}");
/// ```
pub fn mnasnet() -> Model {
    let mut layers = Vec::new();
    layers.push(ConvLayer::new(1, 32, 3, 3, 3, 112, 112).with_stride(2));
    // SepConv 3x3, K16
    let (dw, pw) = depthwise_separable_to_conv(1, 32, 16, 3, 112, 112, 1);
    layers.push(dw);
    layers.push(pw);

    // MBConv blocks: (expansion, kernel, out_ch, repeats, stride)
    let settings: [(u64, u64, u64, u32, u64); 6] = [
        (6, 3, 24, 2, 2),
        (3, 5, 40, 3, 2),
        (6, 3, 80, 4, 2),
        (6, 3, 112, 2, 1),
        (6, 5, 160, 3, 2),
        (6, 3, 320, 1, 1),
    ];
    let mut in_ch: u64 = 16;
    let mut xy: u64 = 112;
    for (t, kernel, c, n, s) in settings {
        for b in 0..n {
            let stride = if b == 0 { s } else { 1 };
            let out_xy = if stride == 2 { xy / 2 } else { xy };
            let expanded = in_ch * t;
            layers.push(ConvLayer::new(1, expanded, in_ch, 1, 1, xy, xy));
            let (dw, pw) =
                depthwise_separable_to_conv(1, expanded, c, kernel, out_xy, out_xy, stride);
            layers.push(dw);
            layers.push(pw);
            in_ch = c;
            xy = out_xy;
        }
    }
    layers.push(ConvLayer::new(1, 1280, 320, 1, 1, 7, 7));
    layers.push(fc_to_conv(1, 1280, 1000));
    Model::from_layers("MnasNet", layers)
}

/// A single Transformer encoder block with ALBERT-base dimensions
/// (hidden 768, 12 heads, FFN 3072) at sequence length 512, lowered to
/// CONV via col2im (Vaswani et al., 2017; Lan et al., 2019).
///
/// The per-head attention GEMMs have the "large and uneven kernel sizes"
/// the paper's Section VII-D highlights.
///
/// ```
/// let m = spotlight_models::transformer();
/// assert!(m.total_macs() > 3_000_000_000);
/// ```
pub fn transformer() -> Model {
    const HIDDEN: u64 = 768;
    const HEADS: u64 = 12;
    const HEAD_DIM: u64 = HIDDEN / HEADS;
    const FFN: u64 = 3072;
    const SEQ: u64 = 512;

    let mut layers = Vec::new();
    // Q, K, V projections: [hidden x hidden] * [hidden x seq]
    for _ in 0..3 {
        layers.push(gemm_to_conv(HIDDEN, SEQ, HIDDEN));
    }
    // Attention scores per head: [seq x head_dim] * [head_dim x seq]
    for _ in 0..HEADS {
        layers.push(gemm_to_conv(SEQ, SEQ, HEAD_DIM));
    }
    // Attention-weighted values per head: [seq x seq] * [seq x head_dim]
    for _ in 0..HEADS {
        layers.push(gemm_to_conv(SEQ, HEAD_DIM, SEQ));
    }
    // Output projection
    layers.push(gemm_to_conv(HIDDEN, SEQ, HIDDEN));
    // Feed-forward
    layers.push(gemm_to_conv(FFN, SEQ, HIDDEN));
    layers.push(gemm_to_conv(HIDDEN, SEQ, FFN));
    Model::from_layers("Transformer", layers)
}

/// The five evaluated models in the paper's presentation order.
pub fn all_models() -> Vec<Model> {
    vec![
        vgg16(),
        resnet50(),
        mobilenet_v2(),
        mnasnet(),
        transformer(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_16_weight_layers() {
        // 13 CONV + 3 FC instances (some CONVs share shapes after dedup).
        assert_eq!(vgg16().instance_count(), 16);
    }

    #[test]
    fn vgg16_macs_match_reference() {
        // Reference: ~15.47 GMACs for 224x224 inference.
        let g = vgg16().total_macs() as f64 / 1e9;
        assert!((15.0..16.0).contains(&g), "VGG16 GMACs = {g}");
    }

    #[test]
    fn resnet50_macs_match_reference() {
        // Reference: ~3.8-4.1 GMACs (with projection shortcuts).
        let g = resnet50().total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&g), "ResNet-50 GMACs = {g}");
    }

    #[test]
    fn resnet50_params_match_reference() {
        // ~25.5 M parameters.
        let p = resnet50().total_weights() as f64 / 1e6;
        assert!((20.0..28.0).contains(&p), "ResNet-50 params = {p}M");
    }

    #[test]
    fn mobilenet_macs_match_reference() {
        // Reference: ~0.3 GMACs.
        let g = mobilenet_v2().total_macs() as f64 / 1e9;
        assert!((0.25..0.45).contains(&g), "MobileNetV2 GMACs = {g}");
    }

    #[test]
    fn mnasnet_macs_match_reference() {
        // Reference: ~0.3-0.4 GMACs for MnasNet-A1.
        let g = mnasnet().total_macs() as f64 / 1e9;
        assert!((0.25..0.55).contains(&g), "MnasNet GMACs = {g}");
    }

    #[test]
    fn transformer_layers_have_large_uneven_kernels() {
        // Section VII-D: GEMM-to-CONV conversion "results in large and
        // uneven kernel sizes".
        let t = transformer();
        assert!(t.layers().iter().all(|e| e.layer.c == 1));
        assert!(t.layers().iter().any(|e| e.layer.r * e.layer.s >= 512));
    }

    #[test]
    fn transformer_attention_heads_dedup() {
        // The 12 identical per-head score GEMMs collapse to one entry.
        let t = transformer();
        assert!(t.layers().iter().any(|e| e.count == 12));
    }

    #[test]
    fn all_models_have_distinct_names() {
        let ms = all_models();
        let mut names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn mobilenet_spatial_resolution_descends_to_7() {
        let m = mobilenet_v2();
        assert!(m.layers().iter().any(|e| e.layer.x == 7));
    }

    #[test]
    fn depthwise_layers_present_in_mobile_models() {
        for m in [mobilenet_v2(), mnasnet()] {
            assert!(
                m.layers().iter().any(|e| e.layer.k == 1 && e.layer.c == 1),
                "{} lacks depthwise stages",
                m.name()
            );
        }
    }

    #[test]
    fn every_layer_extent_positive_and_plausible() {
        for m in all_models() {
            for e in m.layers() {
                let l = &e.layer;
                assert!(l.macs() > 0);
                assert!(l.x <= 512 && l.y <= 512, "{l}");
            }
        }
    }
}
