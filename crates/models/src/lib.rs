#![warn(missing_docs)]

//! DL model zoo for the Spotlight reproduction.
//!
//! The paper evaluates five DL models (Section VII): VGG16, ResNet-50,
//! MobileNetV2, MnasNet, and a single Transformer encoder block (the
//! building block of ALBERT). This crate lowers each onto the CONV
//! primitive of [`spotlight_conv`], de-duplicating repeated layer shapes
//! with multiplicities so the layerwise optimizer searches each *unique*
//! shape once.
//!
//! # Examples
//!
//! ```
//! use spotlight_models::zoo;
//!
//! let resnet = zoo::resnet50();
//! assert_eq!(resnet.name(), "ResNet-50");
//! assert!(resnet.total_macs() > 3_000_000_000); // ~3.8 GMACs at batch 1
//! for entry in resnet.layers() {
//!     assert!(entry.count >= 1);
//! }
//! ```

pub mod model;
pub mod zoo;

pub use model::{LayerEntry, Model, ModelId};
pub use zoo::{all_models, mnasnet, mobilenet_v2, resnet50, transformer, vgg16};
