#![warn(missing_docs)]

//! Baseline search algorithms for the Section VII-E ablation.
//!
//! Spotlight's claim is comparative: daBO must beat off-the-shelf search
//! at an equal evaluation budget. This crate provides the competitors,
//! all behind the same [`spotlight_dabo::Search`] ask/tell interface:
//!
//! - [`RandomSearch`] — Spotlight-R,
//! - [`Genetic`] — Spotlight-GA (tournament selection, crossover,
//!   mutation, elitist truncation),
//! - [`ConfuciuXSearch`] — a ConfuciuX-like tool: REINFORCE-style policy
//!   gradient over *discretized hardware parameters and a three-way
//!   dataflow choice*, followed by a GA refinement phase. Like the real
//!   ConfuciuX it never searches tile sizes or loop orders,
//! - [`HascoSearch`] — a HASCO-like tool: Bayesian optimization over the
//!   hardware with one *fixed* software schedule style.
//!
//! # Examples
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! use spotlight_dabo::{run_minimization, Search};
//! use spotlight_searchers::RandomSearch;
//!
//! let mut rs = RandomSearch::new(|rng: &mut dyn rand::RngCore| {
//!     rand::Rng::gen_range(rng, 0.0..1.0f64)
//! });
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let trace = run_minimization(&mut rs, &mut rng, 50, |x| (x - 0.3).abs());
//! assert!(trace.final_best().unwrap() < 0.2);
//! ```

pub mod confuciux;
pub mod genetic;
pub mod hasco;
pub mod random;

pub use confuciux::{ConfuciuXPoint, ConfuciuXSearch};
pub use genetic::Genetic;
pub use hasco::HascoSearch;
pub use random::RandomSearch;
