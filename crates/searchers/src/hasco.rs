//! A HASCO-like co-design baseline.
//!
//! HASCO (Xiao et al., ISCA 2021) combines Bayesian optimization over
//! hardware with reinforcement learning over intermediate representations
//! but "uses a fixed software schedule" (Section VII). This baseline
//! reproduces that restriction: off-the-shelf BO (raw hardware parameters
//! as surrogate inputs — no domain features) with one fixed dataflow
//! style applied to every layer.

use rand::RngCore;

use spotlight_accel::{DataflowStyle, HardwareConfig};
use spotlight_dabo::{Dabo, DaboConfig, FnFeatureMap, Search, SurrogateKind};
use spotlight_gp::Kernel;
use spotlight_space::{sample, ParamRanges};

/// Raw-parameter encoding of a hardware configuration (the vanilla-BO
/// surrogate input: no domain information).
pub fn raw_hw_features(hw: &HardwareConfig) -> Vec<f64> {
    vec![
        hw.pes() as f64,
        hw.pe_width() as f64,
        hw.simd_lanes() as f64,
        hw.rf_kib() as f64,
        hw.l2_kib() as f64,
        hw.noc_bandwidth() as f64,
    ]
}

/// Number of raw hardware features.
pub const RAW_HW_DIM: usize = 6;

/// The raw-feature map HASCO's BO runs on.
type RawHwFeatureMap = FnFeatureMap<fn(&HardwareConfig) -> Vec<f64>>;

/// HASCO-like search: vanilla BO over hardware with a fixed schedule
/// style.
///
/// The driver must evaluate each suggested configuration with
/// [`HascoSearch::style`]'s schedule on every layer — the tool itself
/// never proposes schedules.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use spotlight_dabo::Search;
/// use spotlight_searchers::HascoSearch;
/// use spotlight_space::ParamRanges;
///
/// let mut h = HascoSearch::new(ParamRanges::edge());
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let hw = h.suggest(&mut rng);
/// assert!(ParamRanges::edge().contains(&hw));
/// ```
pub struct HascoSearch {
    inner: Dabo<HardwareConfig, RawHwFeatureMap>,
    style: DataflowStyle,
}

impl HascoSearch {
    /// Creates a HASCO-like search over `ranges` with the
    /// weight-stationary fixed schedule (HASCO's tensorize templates are
    /// closest to weight-stationary GEMM dataflows).
    pub fn new(ranges: ParamRanges) -> Self {
        let config = DaboConfig {
            // Off-the-shelf BO: Matérn kernel on raw parameters.
            surrogate: SurrogateKind::Gp(Kernel::matern52(2.0)),
            ..DaboConfig::default()
        };
        let fm = FnFeatureMap::new(
            RAW_HW_DIM,
            raw_hw_features as fn(&HardwareConfig) -> Vec<f64>,
        );
        let inner = Dabo::new(config, fm, move |rng: &mut dyn RngCore| {
            sample::sample_hw(rng, &ranges)
        });
        HascoSearch {
            inner,
            style: DataflowStyle::WeightStationary,
        }
    }

    /// The fixed software-schedule style this tool applies to every layer.
    pub fn style(&self) -> DataflowStyle {
        self.style
    }
}

impl Search<HardwareConfig> for HascoSearch {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> HardwareConfig {
        self.inner.suggest(rng)
    }

    fn observe(&mut self, point: HardwareConfig, cost: f64) {
        self.inner.observe(point, cost);
    }

    fn best(&self) -> Option<(&HardwareConfig, f64)> {
        self.inner.best()
    }

    fn history(&self) -> &[f64] {
        self.inner.history()
    }

    fn surrogate_timers(&self) -> Option<spotlight_dabo::SurrogateTimers> {
        self.inner.surrogate_timers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spotlight_dabo::run_minimization;

    #[test]
    fn optimizes_a_simple_hw_objective() {
        // Favor maximum PEs: BO should find near-300-PE configs quickly.
        let mut h = HascoSearch::new(ParamRanges::edge());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = run_minimization(&mut h, &mut rng, 40, |hw| (300 - hw.pes()) as f64 + 1.0);
        assert!(t.final_best().unwrap() < 60.0);
    }

    #[test]
    fn fixed_style_is_weight_stationary() {
        let h = HascoSearch::new(ParamRanges::edge());
        assert_eq!(h.style(), DataflowStyle::WeightStationary);
    }

    #[test]
    fn raw_features_have_declared_dim() {
        let hw = HardwareConfig::new(128, 16, 2, 64, 128, 64).unwrap();
        assert_eq!(raw_hw_features(&hw).len(), RAW_HW_DIM);
    }

    #[test]
    fn suggestions_stay_in_range() {
        let mut h = HascoSearch::new(ParamRanges::cloud());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..30 {
            let hw = h.suggest(&mut rng);
            assert!(ParamRanges::cloud().contains(&hw));
            h.observe(hw, 1.0);
        }
    }
}
