//! Uniform random search (Spotlight-R).

use rand::RngCore;

use spotlight_dabo::{Sampler, Search};

/// Uniform random search: every suggestion is an independent draw from
/// the parameter-space sampler. The weakest baseline of Figure 10, but an
/// honest one — its CDF in Figure 11 is the unbiased picture of the raw
/// co-design space.
pub struct RandomSearch<P> {
    sampler: Sampler<P>,
    points: Vec<P>,
    costs: Vec<f64>,
    best: Option<(usize, f64)>,
}

impl<P> RandomSearch<P> {
    /// Creates a random search over the given sampler.
    pub fn new(sampler: impl FnMut(&mut dyn RngCore) -> P + 'static) -> Self {
        RandomSearch {
            sampler: Box::new(sampler),
            points: Vec::new(),
            costs: Vec::new(),
            best: None,
        }
    }
}

impl<P> Search<P> for RandomSearch<P> {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> P {
        (self.sampler)(rng)
    }

    fn observe(&mut self, point: P, cost: f64) {
        let idx = self.points.len();
        self.points.push(point);
        self.costs.push(cost);
        if cost.is_finite() && self.best.is_none_or(|(_, b)| cost < b) {
            self.best = Some((idx, cost));
        }
    }

    fn best(&self) -> Option<(&P, f64)> {
        self.best.map(|(i, c)| (&self.points[i], c))
    }

    fn history(&self) -> &[f64] {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use spotlight_dabo::run_minimization;

    #[test]
    fn tracks_best_and_history() {
        let mut rs = RandomSearch::new(|rng: &mut dyn RngCore| rng.gen_range(0..100u32));
        rs.observe(10, 5.0);
        rs.observe(20, f64::INFINITY);
        rs.observe(30, 2.0);
        assert_eq!(rs.best().map(|(p, c)| (*p, c)), Some((30, 2.0)));
        assert_eq!(rs.history(), &[5.0, f64::INFINITY, 2.0]);
    }

    #[test]
    fn converges_at_rate_of_uniform_sampling() {
        let mut rs = RandomSearch::new(|rng: &mut dyn RngCore| rng.gen_range(0.0..1.0f64));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = run_minimization(&mut rs, &mut rng, 200, |x| *x);
        // Expected min of 200 uniforms ~ 1/201.
        assert!(t.final_best().unwrap() < 0.05);
    }

    #[test]
    fn no_best_when_everything_infeasible() {
        let mut rs = RandomSearch::new(|_: &mut dyn RngCore| 0u8);
        rs.observe(0, f64::INFINITY);
        assert!(rs.best().is_none());
    }
}
