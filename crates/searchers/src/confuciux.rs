//! A ConfuciuX-like HW/SW co-design baseline.
//!
//! ConfuciuX (Kao et al., MICRO 2020) assigns hardware resources with
//! reinforcement learning and refines with a genetic algorithm. Its
//! software space is three fixed dataflows (Eyeriss-, NVDLA-,
//! ShiDianNao-like) and it does not search tile sizes or loop orders —
//! the restriction Section VII identifies as the reason it trails
//! Spotlight. This module reproduces that *shape*: a REINFORCE-style
//! policy over discretized hardware parameters plus the categorical
//! dataflow choice, followed by GA refinement over the same space.

use rand::{Rng, RngCore};

use spotlight_accel::{DataflowStyle, HardwareConfig};
use spotlight_conv::factor::{divisors, nearest_divisor};
use spotlight_dabo::Search;
use spotlight_space::ParamRanges;

/// The point type ConfuciuX searches: a hardware configuration plus one
/// of the three rigid dataflow styles. Tile sizes and loop orders are
/// *derived* from the style, never searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfuciuXPoint {
    /// The hardware half.
    pub hw: HardwareConfig,
    /// Which rigid schedule family the accelerator runs.
    pub style: DataflowStyle,
}

/// Number of buckets each continuous hardware parameter is quantized
/// into for the categorical policy.
const BUCKETS: usize = 8;
/// Hardware parameter slots: pes, width-rank, simd, rf, l2, bandwidth.
const HW_SLOTS: usize = 6;
/// Index of the dataflow-style slot.
const STYLE_SLOT: usize = HW_SLOTS;

/// REINFORCE-style policy-gradient search with GA refinement.
///
/// Each parameter slot holds a categorical softmax policy over `BUCKETS`
/// options (3 for the style slot). `suggest` samples every slot;
/// `observe` applies a policy-gradient step with a moving-average
/// baseline on the reward `-ln(cost)`. After `rl_budget` observations the
/// search switches to mutation-based hill climbing around the best point
/// found (the GA refinement stage of the original tool).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use spotlight_dabo::Search;
/// use spotlight_searchers::ConfuciuXSearch;
/// use spotlight_space::ParamRanges;
///
/// let mut cx = ConfuciuXSearch::new(ParamRanges::edge(), 40);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let p = cx.suggest(&mut rng);
/// assert!(ParamRanges::edge().contains(&p.hw));
/// ```
pub struct ConfuciuXSearch {
    ranges: ParamRanges,
    /// Per-slot softmax preferences.
    logits: Vec<Vec<f64>>,
    /// Slots sampled for the most recent suggestion (for the gradient).
    last_choice: Option<Vec<usize>>,
    /// Moving-average reward baseline.
    baseline: f64,
    baseline_n: usize,
    learning_rate: f64,
    rl_budget: usize,
    history: Vec<f64>,
    points: Vec<ConfuciuXPoint>,
    best: Option<(usize, f64)>,
}

impl ConfuciuXSearch {
    /// Creates a search over `ranges` that runs `rl_budget` RL steps
    /// before switching to GA refinement.
    pub fn new(ranges: ParamRanges, rl_budget: usize) -> Self {
        let mut logits = vec![vec![0.0; BUCKETS]; HW_SLOTS];
        logits.push(vec![0.0; DataflowStyle::RIGID.len()]);
        ConfuciuXSearch {
            ranges,
            logits,
            last_choice: None,
            baseline: 0.0,
            baseline_n: 0,
            learning_rate: 0.15,
            rl_budget,
            history: Vec::new(),
            points: Vec::new(),
            best: None,
        }
    }

    /// Whether the search is still in its RL phase.
    pub fn in_rl_phase(&self) -> bool {
        self.history.len() < self.rl_budget
    }

    fn softmax(logits: &[f64]) -> Vec<f64> {
        let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - m).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    fn sample_slot(&self, slot: usize, rng: &mut dyn RngCore) -> usize {
        let probs = Self::softmax(&self.logits[slot]);
        let mut u: f64 = rng.gen();
        for (i, p) in probs.iter().enumerate() {
            if u < *p {
                return i;
            }
            u -= p;
        }
        probs.len() - 1
    }

    /// Decodes bucket indices into a concrete point.
    fn decode(&self, choice: &[usize]) -> ConfuciuXPoint {
        let lerp = |(lo, hi): (u32, u32), b: usize| {
            lo + ((hi - lo) as u64 * b as u64 / (BUCKETS as u64 - 1)) as u32
        };
        let pes = lerp(self.ranges.pes, choice[0]);
        let widths = divisors(pes as u64);
        let width = widths[choice[1] * (widths.len() - 1) / (BUCKETS - 1)] as u32;
        let simd = lerp(self.ranges.simd_lanes, choice[2]);
        let rf = snap(
            lerp(self.ranges.rf_kib, choice[3]),
            self.ranges.rf_kib,
            self.ranges.rf_stride_kib,
        );
        let l2 = snap(
            lerp(self.ranges.l2_kib, choice[4]),
            self.ranges.l2_kib,
            self.ranges.l2_stride_kib,
        );
        let bw = lerp(self.ranges.noc_bandwidth, choice[5]);
        let hw = HardwareConfig::new(pes, width, simd, rf, l2, bw)
            .expect("width drawn from divisors of pes");
        ConfuciuXPoint {
            hw,
            style: DataflowStyle::RIGID[choice[STYLE_SLOT]],
        }
    }

    fn ga_refine(&self, rng: &mut dyn RngCore) -> ConfuciuXPoint {
        let (base, _) = self
            .best
            .map(|(i, c)| (self.points[i], c))
            .expect("GA phase starts after observations");
        // Mutate one hardware parameter of the incumbent.
        let hw = spotlight_space::mutate::mutate_hw(rng, &base.hw, &self.ranges);
        let style = if rng.gen_bool(0.2) {
            DataflowStyle::RIGID[rng.gen_range(0..DataflowStyle::RIGID.len())]
        } else {
            base.style
        };
        ConfuciuXPoint { hw, style }
    }
}

fn snap(v: u32, (lo, hi): (u32, u32), stride: u32) -> u32 {
    let snapped = lo + ((v.saturating_sub(lo) + stride / 2) / stride) * stride;
    snapped.clamp(lo, hi)
}

impl Search<ConfuciuXPoint> for ConfuciuXSearch {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> ConfuciuXPoint {
        if !self.in_rl_phase() && self.best.is_some() {
            self.last_choice = None;
            return self.ga_refine(rng);
        }
        let choice: Vec<usize> = (0..=STYLE_SLOT).map(|s| self.sample_slot(s, rng)).collect();
        let point = self.decode(&choice);
        self.last_choice = Some(choice);
        point
    }

    fn observe(&mut self, point: ConfuciuXPoint, cost: f64) {
        let idx = self.points.len();
        self.points.push(point);
        self.history.push(cost);
        if cost.is_finite() && self.best.is_none_or(|(_, b)| cost < b) {
            self.best = Some((idx, cost));
        }

        // Policy-gradient update for RL-phase suggestions.
        if let Some(choice) = self.last_choice.take() {
            let reward = if cost.is_finite() && cost > 0.0 {
                -cost.ln()
            } else {
                self.baseline - 10.0
            };
            self.baseline_n += 1;
            self.baseline += (reward - self.baseline) / self.baseline_n as f64;
            let advantage = reward - self.baseline;
            for (slot, &c) in choice.iter().enumerate() {
                let probs = Self::softmax(&self.logits[slot]);
                for (i, p) in probs.iter().enumerate() {
                    let indicator = if i == c { 1.0 } else { 0.0 };
                    self.logits[slot][i] += self.learning_rate * advantage * (indicator - p);
                }
            }
        }
    }

    fn best(&self) -> Option<(&ConfuciuXPoint, f64)> {
        self.best.map(|(i, c)| (&self.points[i], c))
    }

    fn history(&self) -> &[f64] {
        &self.history
    }
}

/// Decodes the best hardware width for tests: exposed so integration
/// tests can confirm the decoded widths always divide the PE count.
pub fn width_divides(p: &ConfuciuXPoint) -> bool {
    p.hw.pes().is_multiple_of(p.hw.pe_width())
        && nearest_divisor(p.hw.pes() as u64, p.hw.pe_width() as u64) == p.hw.pe_width() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spotlight_dabo::run_minimization;

    #[test]
    fn suggestions_are_always_valid() {
        let mut cx = ConfuciuXSearch::new(ParamRanges::edge(), 30);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            let p = cx.suggest(&mut rng);
            assert!(ParamRanges::edge().contains(&p.hw), "{}", p.hw);
            assert!(width_divides(&p));
            cx.observe(p, 1.0);
        }
    }

    #[test]
    fn rl_phase_learns_a_preference() {
        // Reward small PE counts: the policy should shift its first-slot
        // distribution toward bucket 0.
        let mut cx = ConfuciuXSearch::new(ParamRanges::edge(), 400);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = run_minimization(&mut cx, &mut rng, 400, |p| p.hw.pes() as f64);
        let probs = ConfuciuXSearch::softmax(&cx.logits[0]);
        let low: f64 = probs[..2].iter().sum();
        let high: f64 = probs[BUCKETS - 2..].iter().sum();
        assert!(low > high, "policy did not learn: {probs:?}");
    }

    #[test]
    fn ga_phase_kicks_in_after_budget() {
        let mut cx = ConfuciuXSearch::new(ParamRanges::edge(), 5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..5 {
            let p = cx.suggest(&mut rng);
            cx.observe(p, 10.0);
        }
        assert!(!cx.in_rl_phase());
        let p = cx.suggest(&mut rng);
        assert!(ParamRanges::edge().contains(&p.hw));
    }

    #[test]
    fn style_slot_stays_in_rigid_menu() {
        let mut cx = ConfuciuXSearch::new(ParamRanges::edge(), 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            let p = cx.suggest(&mut rng);
            assert!(DataflowStyle::RIGID.contains(&p.style));
            cx.observe(p, 1.0);
        }
    }

    #[test]
    fn infeasible_costs_do_not_poison_baseline() {
        let mut cx = ConfuciuXSearch::new(ParamRanges::edge(), 50);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for i in 0..50 {
            let p = cx.suggest(&mut rng);
            let cost = if i % 2 == 0 { f64::INFINITY } else { 100.0 };
            cx.observe(p, cost);
        }
        assert!(cx.baseline.is_finite());
        assert!(cx.best().is_some());
    }
}
