//! Genetic algorithm (Spotlight-GA).

use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use spotlight_dabo::{CrossoverOp, MutateOp, Sampler, Search};

/// A steady-state genetic algorithm behind the ask/tell interface:
/// tournament parent selection over the evaluated pool, crossover,
/// mutation, and elitist truncation of the pool.
///
/// The operators are supplied as closures so the same engine searches the
/// hardware space (with [`spotlight_space::mutate::mutate_hw`] and
/// friends) and the schedule space.
///
/// # Examples
///
/// ```
/// use rand::{Rng, SeedableRng};
/// use spotlight_dabo::{run_minimization, Search};
/// use spotlight_searchers::Genetic;
///
/// // Minimize |x - 50| over integers via bit-flip-ish mutation.
/// let mut ga = Genetic::new(
///     16,
///     0.4,
///     |rng: &mut dyn rand::RngCore| rand::Rng::gen_range(rng, 0..1000i64),
///     |rng, x| x + rand::Rng::gen_range(rng, -10..=10),
///     |rng, a, b| if rand::Rng::gen_bool(rng, 0.5) { *a } else { *b },
/// );
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let t = run_minimization(&mut ga, &mut rng, 150, |x| (x - 50).abs() as f64);
/// assert!(t.final_best().unwrap() < 10.0);
/// ```
pub struct Genetic<P> {
    population_size: usize,
    mutation_rate: f64,
    sampler: Sampler<P>,
    mutate: MutateOp<P>,
    crossover: CrossoverOp<P>,
    /// Evaluated pool, truncated elitistically to `population_size`.
    pool: Vec<(P, f64)>,
    history: Vec<f64>,
    best: Option<(P, f64)>,
}

impl<P: Clone> Genetic<P> {
    /// Creates a GA with the given population size, per-child mutation
    /// probability, and operators.
    ///
    /// # Panics
    ///
    /// Panics if `population_size == 0` or `mutation_rate` is outside
    /// `[0, 1]`.
    pub fn new(
        population_size: usize,
        mutation_rate: f64,
        sampler: impl FnMut(&mut dyn RngCore) -> P + 'static,
        mutate: impl FnMut(&mut dyn RngCore, &P) -> P + 'static,
        crossover: impl FnMut(&mut dyn RngCore, &P, &P) -> P + 'static,
    ) -> Self {
        assert!(population_size > 0, "population must be non-empty");
        assert!(
            (0.0..=1.0).contains(&mutation_rate),
            "mutation rate must be a probability"
        );
        Genetic {
            population_size,
            mutation_rate,
            sampler: Box::new(sampler),
            mutate: Box::new(mutate),
            crossover: Box::new(crossover),
            pool: Vec::new(),
            history: Vec::new(),
            best: None,
        }
    }

    /// Binary tournament over the evaluated pool.
    fn tournament<'a>(&'a self, rng: &mut dyn RngCore) -> &'a P {
        let a = self.pool.choose(rng).expect("pool non-empty");
        let b = self.pool.choose(rng).expect("pool non-empty");
        if a.1 <= b.1 {
            &a.0
        } else {
            &b.0
        }
    }

    /// Current evaluated pool size (for tests and diagnostics).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }
}

impl<P: Clone> Search<P> for Genetic<P> {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> P {
        // Fill the initial population randomly.
        if self.pool.len() < self.population_size {
            return (self.sampler)(rng);
        }
        let a = self.tournament(rng).clone();
        let b = self.tournament(rng).clone();
        let mut child = (self.crossover)(rng, &a, &b);
        if rng.gen_bool(self.mutation_rate) {
            child = (self.mutate)(rng, &child);
        }
        child
    }

    fn observe(&mut self, point: P, cost: f64) {
        self.history.push(cost);
        if cost.is_finite() && self.best.as_ref().is_none_or(|(_, b)| cost < *b) {
            self.best = Some((point.clone(), cost));
        }
        self.pool.push((point, cost));
        if self.pool.len() > self.population_size {
            // Elitist truncation: drop the worst (infeasible points sort
            // last because INFINITY compares greatest under total_cmp).
            self.pool.sort_by(|a, b| a.1.total_cmp(&b.1));
            self.pool.truncate(self.population_size);
        }
    }

    fn best(&self) -> Option<(&P, f64)> {
        self.best.as_ref().map(|(p, c)| (p, *c))
    }

    fn history(&self) -> &[f64] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spotlight_dabo::run_minimization;

    fn int_ga(pop: usize) -> Genetic<i64> {
        Genetic::new(
            pop,
            0.5,
            |rng: &mut dyn RngCore| rng.gen_range(0..10_000i64),
            |rng, x| (x + rng.gen_range(-100..=100)).clamp(0, 10_000),
            |rng, a, b| if rng.gen_bool(0.5) { *a } else { *b },
        )
    }

    #[test]
    fn improves_beyond_initial_population() {
        let mut ga = int_ga(12);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cost = |x: &i64| (x - 7_777).abs() as f64;
        let t = run_minimization(&mut ga, &mut rng, 120, cost);
        let init_best = t.best_so_far()[11];
        let final_best = t.final_best().unwrap();
        assert!(final_best < init_best, "{final_best} !< {init_best}");
        assert!(final_best < 500.0);
    }

    #[test]
    fn pool_is_truncated_elitistically() {
        let mut ga = int_ga(4);
        for i in 0..10 {
            ga.observe(i, (10 - i) as f64);
        }
        assert_eq!(ga.pool_len(), 4);
        // The best (lowest-cost) survivors are the last observations.
        assert_eq!(ga.best().map(|(p, c)| (*p, c)), Some((9, 1.0)));
    }

    #[test]
    fn infeasible_points_are_purged_first() {
        let mut ga = int_ga(3);
        ga.observe(1, f64::INFINITY);
        ga.observe(2, 5.0);
        ga.observe(3, 4.0);
        ga.observe(4, 3.0);
        // Pool holds the three finite points; INFINITY was dropped.
        assert!(ga.pool.iter().all(|(_, c)| c.is_finite()));
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_rejected() {
        let _ = Genetic::new(0, 0.5, |_: &mut dyn RngCore| 0i64, |_, x| *x, |_, a, _| *a);
    }
}

#[cfg(test)]
mod recombination_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn children_come_from_parent_pool_after_warmup() {
        // Parents are two distinct plateaus; every child must be one of
        // the two values (crossover picks a parent gene) or a mutation of
        // one (+-5 here).
        let mut ga = Genetic::new(
            4,
            0.0, // no mutation: children are pure crossovers
            |rng: &mut dyn RngCore| rng.gen_range(0..2i64) * 1000,
            |_, x| *x,
            |rng, a, b| if rng.gen_bool(0.5) { *a } else { *b },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..4 {
            let p = ga.suggest(&mut rng);
            ga.observe(p, p as f64);
        }
        for _ in 0..30 {
            let child = ga.suggest(&mut rng);
            assert!(child == 0 || child == 1000, "child {child} not from pool");
            ga.observe(child, child as f64);
        }
    }

    #[test]
    fn selection_pressure_prefers_fitter_parents() {
        // With a pool of mixed fitness, tournament selection should
        // produce children matching the fitter plateau more often.
        let mut ga = Genetic::new(
            8,
            0.0,
            |rng: &mut dyn RngCore| rng.gen_range(0..2i64),
            |_, x| *x,
            |rng, a, b| if rng.gen_bool(0.5) { *a } else { *b },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..8 {
            let p = ga.suggest(&mut rng);
            // 0 is fit (cost 0), 1 is unfit (cost 100).
            ga.observe(p, p as f64 * 100.0);
        }
        let mut zeros = 0;
        for _ in 0..60 {
            let child = ga.suggest(&mut rng);
            if child == 0 {
                zeros += 1;
            }
            ga.observe(child, child as f64 * 100.0);
        }
        assert!(zeros > 40, "only {zeros}/60 children from the fit plateau");
    }
}
