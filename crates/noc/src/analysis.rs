//! Schedule-level interconnect analysis.
//!
//! Derives each tensor's *delivery pattern* from the schedule's spatial
//! unrolling — which dimensions index the tensor determine whether rows
//! and columns receive distinct slices (unicast along that axis) or the
//! same data (multicast) — then prices one inner iteration of traffic on
//! the mesh.

use spotlight_accel::HardwareConfig;
use spotlight_conv::{ConvLayer, Dim};
use spotlight_space::{Schedule, TileLevel};

use crate::mesh::Mesh;

/// How a tensor is delivered across the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Same data for every PE: one multicast tree serves the array.
    Broadcast,
    /// Distinct slice per row, shared within a row: one multicast per
    /// row's worth of data (indexed by the outer unroll only).
    PerRow,
    /// Distinct slice per column, shared down columns (indexed by the
    /// inner unroll only).
    PerColumn,
    /// Distinct data for every PE (indexed by both unrolls).
    PerPe,
}

impl Pattern {
    /// Classifies a tensor from the unroll dimensions.
    pub fn classify(indexed_by_outer: bool, indexed_by_inner: bool) -> Pattern {
        match (indexed_by_outer, indexed_by_inner) {
            (false, false) => Pattern::Broadcast,
            (true, false) => Pattern::PerRow,
            (false, true) => Pattern::PerColumn,
            (true, true) => Pattern::PerPe,
        }
    }

    /// Number of *distinct* values delivered per element of the RF tile:
    /// the fan-out the NoC cannot share.
    pub fn distinct_streams(&self, rows_used: u32, cols_used: u32) -> u32 {
        match self {
            Pattern::Broadcast => 1,
            Pattern::PerRow => rows_used,
            Pattern::PerColumn => cols_used,
            Pattern::PerPe => rows_used * cols_used,
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Pattern::Broadcast => "broadcast",
            Pattern::PerRow => "per-row",
            Pattern::PerColumn => "per-column",
            Pattern::PerPe => "per-PE",
        };
        f.write_str(s)
    }
}

/// Delivery statistics of one tensor under a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryStats {
    /// The delivery pattern.
    pub pattern: Pattern,
    /// Elements in the tensor's RF tile.
    pub rf_tile_elems: u64,
    /// Link traversals to deliver one inner iteration of this tensor.
    pub link_traversals: f64,
    /// Cycles the shared trunk serializes for one inner iteration,
    /// assuming one element per link per cycle.
    pub trunk_cycles: f64,
}

/// Interconnect analysis of a schedule on an accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocAnalysis {
    /// Weight-tensor delivery.
    pub weights: DeliveryStats,
    /// Input-tensor delivery.
    pub inputs: DeliveryStats,
    /// Output-tensor collection (reverse direction, same link costs).
    pub outputs: DeliveryStats,
    /// Worst-case injector-to-leaf latency in hops.
    pub max_hops: u32,
    /// Total link traversals per inner iteration (energy proxy).
    pub total_link_traversals: f64,
    /// Trunk serialization cycles per inner iteration (latency proxy —
    /// the quantity that shrinks on narrow arrays).
    pub total_trunk_cycles: f64,
}

/// Analyzes the delivery of one inner iteration of `sched` on `hw`.
///
/// # Examples
///
/// ```
/// use spotlight_accel::Baseline;
/// use spotlight_conv::ConvLayer;
/// use spotlight_noc::analyze;
/// use spotlight_space::dataflows::dataflow_schedule;
///
/// let hw = Baseline::NvdlaLike.edge_config();
/// let layer = ConvLayer::new(1, 64, 32, 3, 3, 28, 28);
/// let sched = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &layer, &hw);
/// let a = analyze(&hw, &sched, &layer);
/// // Weight-stationary: K across rows, C across columns — weights differ
/// // along both axes, so they are per-PE.
/// assert_eq!(a.weights.pattern, spotlight_noc::Pattern::PerPe);
/// ```
pub fn analyze(hw: &HardwareConfig, sched: &Schedule, layer: &ConvLayer) -> NocAnalysis {
    let mesh = Mesh::for_hw(hw);
    let du0 = sched.outer_unroll();
    let du1 = sched.inner_unroll();
    let rows_used = (sched.outer_unroll_trips().min(hw.pe_rows() as u64)) as u32;
    let cols_used = (sched.inner_unroll_trips().min(hw.pe_width() as u64)) as u32;
    let rows_used = rows_used.max(1);
    let cols_used = cols_used.max(1);

    let (w2, i2, o2) = sched
        .tiles()
        .tensor_footprints(TileLevel::RegisterFile, layer);

    let stats = |indexes: fn(Dim) -> bool, elems: u64| -> DeliveryStats {
        let pattern = Pattern::classify(indexes(du0), indexes(du1));
        // Destination set of one distinct stream.
        let dsts = match pattern {
            Pattern::Broadcast => active_pes(&mesh, rows_used, cols_used),
            Pattern::PerRow => mesh.row(0).into_iter().take(cols_used as usize).collect(),
            Pattern::PerColumn => mesh
                .column(0)
                .into_iter()
                .take(rows_used as usize)
                .collect(),
            Pattern::PerPe => vec![crate::mesh::PeId { row: 0, col: 0 }],
        };
        let tree = mesh.multicast_tree(&dsts);
        let streams = pattern.distinct_streams(rows_used, cols_used) as f64;
        let link_traversals = streams * elems as f64 * tree.edges() as f64;
        // Every distinct stream's elements cross the injection link.
        let trunk_cycles = streams * elems as f64;
        DeliveryStats {
            pattern,
            rf_tile_elems: elems,
            link_traversals,
            trunk_cycles,
        }
    };

    let weights = stats(Dim::indexes_weights, w2);
    let inputs = stats(Dim::indexes_inputs, i2);
    let outputs = stats(Dim::indexes_outputs, o2);
    let corner = crate::mesh::PeId {
        row: rows_used - 1,
        col: cols_used - 1,
    };
    NocAnalysis {
        weights,
        inputs,
        outputs,
        max_hops: mesh.hops_to(corner),
        total_link_traversals: weights.link_traversals
            + inputs.link_traversals
            + outputs.link_traversals,
        total_trunk_cycles: weights.trunk_cycles + inputs.trunk_cycles + outputs.trunk_cycles,
    }
}

fn active_pes(mesh: &Mesh, rows_used: u32, cols_used: u32) -> Vec<crate::mesh::PeId> {
    mesh.all_pes()
        .into_iter()
        .filter(|p| p.row < rows_used && p.col < cols_used)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlight_accel::Baseline;
    use spotlight_space::dataflows::dataflow_schedule;

    fn layer() -> ConvLayer {
        ConvLayer::new(1, 64, 32, 3, 3, 28, 28)
    }

    #[test]
    fn classification_covers_all_cases() {
        assert_eq!(Pattern::classify(false, false), Pattern::Broadcast);
        assert_eq!(Pattern::classify(true, false), Pattern::PerRow);
        assert_eq!(Pattern::classify(false, true), Pattern::PerColumn);
        assert_eq!(Pattern::classify(true, true), Pattern::PerPe);
    }

    #[test]
    fn weight_stationary_patterns() {
        // NVDLA: K outer / C inner. Weights indexed by both (per-PE);
        // inputs by C only (per-column); outputs by K only (per-row).
        let hw = Baseline::NvdlaLike.edge_config();
        let l = layer();
        let s = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &l, &hw);
        let a = analyze(&hw, &s, &l);
        assert_eq!(a.weights.pattern, Pattern::PerPe);
        assert_eq!(a.inputs.pattern, Pattern::PerColumn);
        assert_eq!(a.outputs.pattern, Pattern::PerRow);
    }

    #[test]
    fn output_stationary_broadcasts_weights() {
        // ShiDianNao: X/Y unrolled; weights indexed by neither — pure
        // broadcast, the cheapest delivery.
        let hw = Baseline::ShiDianNaoLike.edge_config();
        let l = layer();
        let s = dataflow_schedule(Baseline::ShiDianNaoLike.dataflow(), &l, &hw);
        let a = analyze(&hw, &s, &l);
        assert_eq!(a.weights.pattern, Pattern::Broadcast);
    }

    #[test]
    fn narrow_array_serializes_unicast_streams_less() {
        // Section VII-C: "on the narrow side of the array, network
        // latency is lower and there are fewer unicast operations."
        // A per-column (column-unicast) tensor streams one distinct
        // slice per *column*, so its trunk serialization per element
        // scales with the array width — smaller on the narrow array.
        let l = layer();
        let tall = spotlight_accel::HardwareConfig::new(256, 4, 2, 128, 256, 128).unwrap();
        let wide = spotlight_accel::HardwareConfig::new(256, 64, 2, 128, 256, 128).unwrap();
        let s_tall = dataflow_schedule(spotlight_accel::DataflowStyle::WeightStationary, &l, &tall);
        let s_wide = dataflow_schedule(spotlight_accel::DataflowStyle::WeightStationary, &l, &wide);
        let a_tall = analyze(&tall, &s_tall, &l);
        let a_wide = analyze(&wide, &s_wide, &l);
        // Inputs are per-column under weight-stationary.
        assert_eq!(a_tall.inputs.pattern, Pattern::PerColumn);
        let per_elem = |d: &DeliveryStats| d.trunk_cycles / d.rf_tile_elems as f64;
        assert!(
            per_elem(&a_tall.inputs) <= per_elem(&a_wide.inputs),
            "tall {} !<= wide {}",
            per_elem(&a_tall.inputs),
            per_elem(&a_wide.inputs)
        );
        // And the worst-case delivery latency is shorter on the narrow side.
        assert!(a_tall.max_hops <= a_wide.max_hops + tall.pe_rows());
    }

    #[test]
    fn totals_are_sums_of_tensors() {
        let hw = Baseline::NvdlaLike.edge_config();
        let l = layer();
        let s = dataflow_schedule(Baseline::NvdlaLike.dataflow(), &l, &hw);
        let a = analyze(&hw, &s, &l);
        let sum = a.weights.link_traversals + a.inputs.link_traversals + a.outputs.link_traversals;
        assert_eq!(a.total_link_traversals, sum);
        assert!(a.max_hops >= 1);
    }

    #[test]
    fn pattern_display() {
        assert_eq!(Pattern::Broadcast.to_string(), "broadcast");
        assert_eq!(Pattern::PerPe.to_string(), "per-PE");
    }
}
