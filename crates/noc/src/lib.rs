#![warn(missing_docs)]

//! Mesh interconnect analysis for DL-accelerator schedules.
//!
//! The analytical cost models charge NoC traffic with a first-order
//! volume/bandwidth formula. This crate provides the detailed view that
//! formula abstracts: a 2-D mesh with XY routing, per-tensor *delivery
//! patterns* derived from the schedule's spatial unrolling (which
//! dimension each tensor is distributed or multicast along), explicit
//! multicast-tree construction, and per-link load accounting that
//! exposes the trunk-link serialization behind the paper's observation
//! that "on the narrow side of the array, network latency is lower and
//! there are fewer unicast operations" (Section VII-C).
//!
//! It is an analysis substrate — the search does not depend on it — used
//! by the `noc_analysis` experiment binary and the narrow-array tests.
//!
//! # Examples
//!
//! ```
//! use spotlight_noc::{Mesh, Pattern};
//!
//! let mesh = Mesh::new(4, 8); // 4 rows x 8 columns, injector at (0, 0)
//! // Broadcasting one value to every PE uses each trunk edge once.
//! let tree = mesh.multicast_tree(&mesh.all_pes());
//! assert_eq!(tree.edges(), 4 * 8 - 1 + 1); // spanning tree + injection link
//! assert!(tree.max_hops() <= 4 + 8);
//! # let _ = Pattern::Broadcast;
//! ```

pub mod analysis;
pub mod mesh;

pub use analysis::{analyze, DeliveryStats, NocAnalysis, Pattern};
pub use mesh::{Mesh, MulticastTree, PeId};
