//! The 2-D mesh topology: XY routing and multicast trees.

/// A PE coordinate on the mesh: `(row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId {
    /// Row index (0 = the row adjacent to the scratchpad injector).
    pub row: u32,
    /// Column index (0 = the column adjacent to the injector).
    pub col: u32,
}

/// A `rows x cols` mesh of PEs with a single injection point at the
/// north-west corner, matching the Figure 2 organization (scratchpad
/// feeding rows of PEs through per-row interconnects).
///
/// Links are unidirectional mesh edges; XY routing sends a flit along
/// the injector row first, then down its destination column. (The Figure
/// 2 fabric is a row-bus + column-queue structure; the XY mesh is its
/// conservative superset.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    rows: u32,
    cols: u32,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        Mesh { rows, cols }
    }

    /// Builds a mesh matching a hardware configuration's PE array.
    pub fn for_hw(hw: &spotlight_accel::HardwareConfig) -> Self {
        Mesh::new(hw.pe_rows(), hw.pe_width())
    }

    /// Rows in the mesh.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Columns in the mesh.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// All PE coordinates, row-major.
    pub fn all_pes(&self) -> Vec<PeId> {
        (0..self.rows)
            .flat_map(|row| (0..self.cols).map(move |col| PeId { row, col }))
            .collect()
    }

    /// The PEs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: u32) -> Vec<PeId> {
        assert!(row < self.rows, "row out of range");
        (0..self.cols).map(|col| PeId { row, col }).collect()
    }

    /// The PEs of one column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: u32) -> Vec<PeId> {
        assert!(col < self.cols, "column out of range");
        (0..self.rows).map(|row| PeId { row, col }).collect()
    }

    /// XY-routing hop count from the injector (north-west corner, one
    /// injection link above `(0,0)`) to `dst`: 1 injection hop + column
    /// hops along row 0 + row hops down the destination column.
    pub fn hops_to(&self, dst: PeId) -> u32 {
        assert!(
            dst.row < self.rows && dst.col < self.cols,
            "PE out of range"
        );
        1 + dst.col + dst.row
    }

    /// Builds the XY multicast tree covering `dsts`: the union of every
    /// destination's XY path, counted as a set of directed links, so
    /// shared prefixes are paid once — the hardware's multicast saving.
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty or contains out-of-range PEs.
    pub fn multicast_tree(&self, dsts: &[PeId]) -> MulticastTree {
        assert!(!dsts.is_empty(), "multicast needs at least one destination");
        let mut row0_reach: u32 = 0; // columns covered on the trunk row
        let mut col_reach = vec![0u32; self.cols as usize]; // depth per column
        let mut max_hops = 0;
        for &d in dsts {
            assert!(d.row < self.rows && d.col < self.cols, "PE out of range");
            row0_reach = row0_reach.max(d.col);
            let depth = &mut col_reach[d.col as usize];
            *depth = (*depth).max(d.row);
            max_hops = max_hops.max(self.hops_to(d));
        }
        // Injection link + trunk links along row 0 + column branch links.
        let edges = 1 + row0_reach + col_reach.iter().sum::<u32>();
        MulticastTree {
            edges,
            max_hops,
            trunk_edges: 1 + row0_reach,
            leaf_count: dsts.len() as u32,
        }
    }
}

/// The shape of one multicast delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticastTree {
    edges: u32,
    max_hops: u32,
    trunk_edges: u32,
    leaf_count: u32,
}

impl MulticastTree {
    /// Total directed links the flit traverses (energy cost of one
    /// multicast).
    pub fn edges(&self) -> u32 {
        self.edges
    }

    /// Longest injector-to-leaf path (latency of one multicast).
    pub fn max_hops(&self) -> u32 {
        self.max_hops
    }

    /// Links on the shared trunk (row 0 + injection) — the serialization
    /// bottleneck when many distinct values stream in.
    pub fn trunk_edges(&self) -> u32 {
        self.trunk_edges
    }

    /// Destinations served.
    pub fn leaf_count(&self) -> u32 {
        self.leaf_count
    }

    /// Energy saving of the tree versus unicasting to every leaf
    /// independently: `(sum of unicast hop counts) / edges`. Always >= 1
    /// for more than one leaf on shared paths.
    pub fn multicast_gain(&self, mesh: &Mesh, dsts: &[PeId]) -> f64 {
        let unicast: u32 = dsts.iter().map(|&d| mesh.hops_to(d)).sum();
        unicast as f64 / self.edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hops_are_manhattan_plus_injection() {
        let m = Mesh::new(4, 8);
        assert_eq!(m.hops_to(PeId { row: 0, col: 0 }), 1);
        assert_eq!(m.hops_to(PeId { row: 3, col: 7 }), 11);
    }

    #[test]
    fn broadcast_tree_is_spanning() {
        let m = Mesh::new(3, 5);
        let t = m.multicast_tree(&m.all_pes());
        // Trunk: injection + 4 row links; branches: 2 per column x 5.
        assert_eq!(t.edges(), 1 + 4 + 2 * 5);
        assert_eq!(t.leaf_count(), 15);
    }

    #[test]
    fn single_destination_tree_is_its_path() {
        let m = Mesh::new(4, 4);
        let d = PeId { row: 2, col: 3 };
        let t = m.multicast_tree(&[d]);
        assert_eq!(t.edges(), m.hops_to(d));
        assert_eq!(t.max_hops(), m.hops_to(d));
    }

    #[test]
    fn row_multicast_cheaper_than_column_on_wide_arrays() {
        // On a wide, short array, delivering to one *column* is cheap
        // (short branches) while one *row* spans the long axis — the
        // geometry behind Spotlight's narrow-array preference.
        let wide = Mesh::new(2, 16);
        let row_tree = wide.multicast_tree(&wide.row(0));
        let col_tree = wide.multicast_tree(&wide.column(0));
        assert!(col_tree.edges() < row_tree.edges());
    }

    #[test]
    fn multicast_gain_at_least_one_for_shared_paths() {
        let m = Mesh::new(4, 4);
        let dsts = m.column(2);
        let t = m.multicast_tree(&dsts);
        assert!(t.multicast_gain(&m, &dsts) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_rejected() {
        let m = Mesh::new(2, 2);
        let _ = m.multicast_tree(&[PeId { row: 5, col: 0 }]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tree_edges_bounded_by_sum_of_paths(
            rows in 1u32..8, cols in 1u32..8, seed in 0u64..1000,
        ) {
            let m = Mesh::new(rows, cols);
            // Deterministic pseudo-random subset of PEs.
            let dsts: Vec<PeId> = m
                .all_pes()
                .into_iter()
                .filter(|p| !(p.row as u64 * 31 + p.col as u64 * 17 + seed).is_multiple_of(3))
                .collect();
            prop_assume!(!dsts.is_empty());
            let t = m.multicast_tree(&dsts);
            let unicast: u32 = dsts.iter().map(|&d| m.hops_to(d)).sum();
            prop_assert!(t.edges() <= unicast);
            prop_assert!(t.max_hops() <= rows + cols);
            prop_assert!(t.edges() >= t.max_hops());
        }
    }
}
